//! Serving-tier benchmark — the `repro serve` command.
//!
//! Drives an in-process [`trigon_serve::Server`] the way a client fleet
//! would and measures the three properties the serving tier exists for:
//!
//! * **cold vs warm** — the same query issued twice; the second replay
//!   comes from the result cache and must be at least
//!   [`WARM_SPEEDUP_FLOOR`]× faster than the cold execution;
//! * **batch amortization** — a k-item batch shares one simulated H2D
//!   upload, so every report's `serving.h2d_share_s` must equal the
//!   cold run's `gpu.transfer_s / k`;
//! * **Eqs. 1–2 admission** — the Table II capacity boundaries of the
//!   C2050 / 2×C2050 roster, checked through [`trigon_serve::Policy`]
//!   (admit / route), plus one genuinely oversized graph refused by a
//!   fleetless server with the CLI's exit-5 code. The verdicts are
//!   recorded without executing the routed graphs — admission fires
//!   before any layout work, which is the point.
//!
//! `repro serve` renders the table and writes
//! `bench_out/BENCH_serve.json`.

use std::time::Instant;

use trigon_core::{FleetSpec, Json};
use trigon_gpu_sim::DeviceSpec;
use trigon_serve::{Policy, Server, ServerConfig, Verdict};

/// Schema version of `BENCH_serve.json`; bump on shape changes.
pub const SERVE_SCHEMA_VERSION: u32 = 1;

/// Minimum accepted warm-over-cold speedup. A warm hit replays cached
/// JSON while a cold run executes the whole pipeline, so the real gap
/// is orders of magnitude; 5× keeps the gate robust on loaded machines.
pub const WARM_SPEEDUP_FLOOR: f64 = 5.0;

/// One cold/warm cell of the sweep.
#[derive(Debug, Clone)]
pub struct ColdWarmPoint {
    /// Registry name of the graph queried.
    pub graph: String,
    /// Workload label.
    pub workload: String,
    /// Cold (first-query) wall nanoseconds.
    pub cold_ns: u64,
    /// Warm (replayed) wall nanoseconds, best of three.
    pub warm_ns: u64,
    /// `cold_ns / warm_ns`.
    pub speedup: f64,
}

/// Outcome of [`run_serve`]: table rows plus the JSON document.
pub struct ServeOutcome {
    /// One row per (graph, workload).
    pub points: Vec<ColdWarmPoint>,
    /// Number of admission decisions that refused a graph outright.
    pub rejections: u64,
    /// The full `BENCH_serve.json` document.
    pub report: Json,
}

fn msg(s: &str) -> Json {
    Json::parse(s).expect("bench request parses")
}

fn handle_ok(server: &Server, request: &str) -> Json {
    let (resp, _) = server.handle(&msg(request));
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "serve bench request failed: {request} -> {resp:?}"
    );
    resp
}

fn json_f64(v: Option<&Json>) -> f64 {
    match v {
        Some(Json::Float(f)) => *f,
        Some(Json::UInt(u)) => *u as f64,
        Some(Json::Int(i)) => *i as f64,
        _ => 0.0,
    }
}

/// The graphs the cold/warm sweep queries: two different generators so
/// the registry serves more than one working set at once.
fn bench_graphs(quick: bool) -> Vec<(&'static str, String)> {
    let n = if quick { 300 } else { 1500 };
    vec![
        (
            "ring",
            format!(r#"{{"op":"load","name":"ring","gen":"ring","n":{n},"seed":11}}"#),
        ),
        (
            "rmat",
            format!(r#"{{"op":"load","name":"rmat","gen":"rmat","n":{n},"seed":11}}"#),
        ),
    ]
}

fn cold_warm_sweep(server: &Server, quick: bool, points: &mut Vec<ColdWarmPoint>) {
    let workloads: &[&str] = if quick {
        &["triangles", "clustering"]
    } else {
        &["triangles", "clustering", "ktruss", "enumerate"]
    };
    for (name, _) in bench_graphs(quick) {
        for w in workloads {
            let q = format!(
                r#"{{"op":"query","graph":"{name}","workload":"{w}","method":"gpu-opt","k":4}}"#
            );
            let t0 = Instant::now();
            let cold = handle_ok(server, &q);
            let cold_ns = t0.elapsed().as_nanos() as u64;
            assert_serving(&cold, "miss");
            let mut warm_ns = u64::MAX;
            let mut warm = Json::Null;
            for _ in 0..3 {
                let t0 = Instant::now();
                warm = handle_ok(server, &q);
                warm_ns = warm_ns.min(t0.elapsed().as_nanos() as u64);
            }
            assert_serving(&warm, "hit");
            let speedup = cold_ns as f64 / warm_ns.max(1) as f64;
            assert!(
                speedup >= WARM_SPEEDUP_FLOOR,
                "warm {name}/{w} replay only {speedup:.1}x faster than cold \
                 (floor {WARM_SPEEDUP_FLOOR}x)"
            );
            points.push(ColdWarmPoint {
                graph: name.to_string(),
                workload: (*w).to_string(),
                cold_ns,
                warm_ns,
                speedup,
            });
        }
    }
}

/// Asserts every report of a query response carries the expected
/// result-cache disposition in its serving section.
fn assert_serving(resp: &Json, want_cache: &str) {
    let Some(Json::Array(reports)) = resp.get("reports") else {
        panic!("query response without reports: {resp:?}");
    };
    for r in reports {
        let cache = r.get("serving").and_then(|s| s.get("cache"));
        assert_eq!(
            cache,
            Some(&Json::from(want_cache)),
            "expected a result-cache {want_cache}"
        );
    }
}

/// Measures the batch H2D amortization: a 3-item batch against a fresh
/// graph must split the cold run's transfer time three ways.
fn batching_json(server: &Server, quick: bool) -> Json {
    let n = if quick { 250 } else { 1000 };
    handle_ok(
        server,
        &format!(r#"{{"op":"load","name":"batch","gen":"gnp","n":{n},"seed":5}}"#),
    );
    let resp = handle_ok(
        server,
        r#"{"op":"query","graph":"batch","batch":[
            {"workload":"triangles","method":"gpu-opt"},
            {"workload":"clustering","method":"gpu-opt"},
            {"workload":"enumerate","method":"gpu-opt"}]}"#,
    );
    let Some(Json::Array(reports)) = resp.get("reports") else {
        panic!("batch response without reports");
    };
    assert_eq!(reports.len(), 3);
    let mut rows = Vec::new();
    for r in reports {
        let transfer_s = json_f64(r.get("gpu").and_then(|g| g.get("transfer_s")));
        let serving = r.get("serving").expect("serving section");
        let share_s = json_f64(serving.get("h2d_share_s"));
        let batch_size = json_f64(serving.get("batch_size"));
        assert_eq!(batch_size as u64, 3);
        assert!(
            (share_s - transfer_s / 3.0).abs() <= f64::EPSILON * transfer_s.max(1.0),
            "h2d_share_s {share_s} must be transfer_s/3 of {transfer_s}"
        );
        let mut o = Json::object();
        o.set(
            "workload",
            r.get("result")
                .and_then(|res| res.get("kind"))
                .cloned()
                .unwrap_or(Json::Null),
        );
        o.set("transfer_s", Json::Float(transfer_s));
        o.set("h2d_share_s", Json::Float(share_s));
        o.set("amortization", Json::Float(3.0));
        rows.push(o);
    }
    let mut doc = Json::object();
    doc.set("batch_size", Json::UInt(3));
    doc.set("items", Json::Array(rows));
    doc
}

/// Sweeps the Table II admission boundaries through [`Policy::admit`]
/// and refuses one oversized graph through a fleetless server. Returns
/// the JSON section and the rejection count.
fn admission_json(server_fleetless: &Server) -> (Json, u64) {
    let policy = Policy {
        device: DeviceSpec::c2050(),
        fleet: Some(FleetSpec::parse("2xC2050").expect("fleet spec")),
    };
    // The exact S-UTM boundaries of the paper's Table II: the C2050
    // holds up to n = 227,023 in global memory; pooling two C2050s
    // matches the C2070's 321,060.
    let cases: &[(u32, &str)] = &[
        (227_023, "admit"),
        (227_024, "route"),
        (321_060, "route"),
        (321_061, "reject"),
    ];
    let mut decisions = Vec::new();
    let mut rejections = 0u64;
    for &(n, want) in cases {
        let (verdict, target) = match policy.admit(n, true) {
            Ok((Verdict::Admit, t)) => ("admit", t),
            Ok((Verdict::Route, t)) => ("route", t),
            Err(_) => ("reject", String::new()),
        };
        assert_eq!(verdict, want, "Eqs. 1-2 verdict at n={n}");
        if verdict == "reject" {
            rejections += 1;
        }
        let mut o = Json::object();
        o.set("n", Json::UInt(u64::from(n)));
        o.set("verdict", Json::from(verdict));
        o.set(
            "target",
            if target.is_empty() {
                Json::Null
            } else {
                Json::from(target)
            },
        );
        decisions.push(o);
    }
    // A genuinely loaded oversized graph through the server path: a
    // 512x512 grid (n = 262,144 > 227,023) is cheap to build, and the
    // fleetless server must refuse the query with the CLI's exit-5
    // code before any layout work runs.
    handle_ok(
        server_fleetless,
        r#"{"op":"load","name":"oversized","gen":"grid","n":262144,"seed":1}"#,
    );
    let (resp, _) = server_fleetless.handle(&msg(
        r#"{"op":"query","graph":"oversized","workload":"triangles","method":"gpu-opt"}"#,
    ));
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        resp.get("code"),
        Some(&Json::UInt(5)),
        "oversized refusal must carry exit code 5: {resp:?}"
    );
    rejections += 1;
    let mut refused = Json::object();
    refused.set("n", Json::UInt(262_144));
    refused.set("verdict", Json::from("reject"));
    refused.set("code", Json::UInt(5));
    refused.set("error", resp.get("error").cloned().unwrap_or(Json::Null));
    decisions.push(refused);

    let device_only = Policy {
        device: DeviceSpec::c2050(),
        fleet: None,
    };
    let mut doc = Json::object();
    doc.set("device", Json::from("C2050"));
    doc.set("fleet", Json::from("2xC2050"));
    doc.set("max_device_n", Json::UInt(device_only.max_n()));
    doc.set("max_fleet_n", Json::UInt(policy.max_n()));
    doc.set("decisions", Json::Array(decisions));
    doc.set("rejections", Json::UInt(rejections));
    (doc, rejections)
}

/// Runs the serving benchmark. `quick` trims graph sizes and the
/// workload list to a seconds-long smoke run for CI.
///
/// # Panics
///
/// Panics when a warm replay misses the cache or the speedup floor,
/// when batch amortization does not divide the transfer exactly, or
/// when an Eqs. 1–2 verdict deviates from the Table II boundaries —
/// the bench doubles as the serving-tier acceptance gate.
#[must_use]
pub fn run_serve(quick: bool) -> ServeOutcome {
    let server = Server::new(ServerConfig {
        device: DeviceSpec::c2050(),
        fleet: Some(FleetSpec::parse("2xC2050").expect("fleet spec")),
        slots: 8,
        depth: 16,
    });
    for (_, load) in bench_graphs(quick) {
        handle_ok(&server, &load);
    }
    let mut points = Vec::new();
    cold_warm_sweep(&server, quick, &mut points);
    let batching = batching_json(&server, quick);

    let fleetless = Server::new(ServerConfig {
        device: DeviceSpec::c2050(),
        fleet: None,
        slots: 8,
        depth: 16,
    });
    let (admission, rejections) = admission_json(&fleetless);

    let stats = handle_ok(&server, r#"{"op":"report"}"#)
        .get("stats")
        .cloned()
        .expect("stats section");

    let mut doc = Json::object();
    doc.set(
        "schema_version",
        Json::UInt(u64::from(SERVE_SCHEMA_VERSION)),
    );
    doc.set("bench_meta", crate::meta::bench_meta());
    doc.set("quick", Json::Bool(quick));
    let mut rows = Vec::new();
    for p in &points {
        let mut o = Json::object();
        o.set("graph", Json::from(p.graph.clone()));
        o.set("workload", Json::from(p.workload.clone()));
        o.set("cold_ns", Json::UInt(p.cold_ns));
        o.set("warm_ns", Json::UInt(p.warm_ns));
        o.set("speedup", Json::Float(p.speedup));
        rows.push(o);
    }
    doc.set("cold_warm", Json::Array(rows));
    doc.set("warm_speedup_floor", Json::Float(WARM_SPEEDUP_FLOOR));
    doc.set("batching", batching);
    doc.set("admission", admission);
    doc.set("server_stats", stats);
    ServeOutcome {
        points,
        rejections,
        report: doc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_serve_bench_holds_its_gates() {
        let out = run_serve(true);
        assert!(out.rejections >= 1, "must record an admission rejection");
        assert_eq!(out.points.len(), 4, "2 graphs x 2 quick workloads");
        for p in &out.points {
            assert!(p.speedup >= WARM_SPEEDUP_FLOOR);
        }
        let r = &out.report;
        assert_eq!(
            r.get("schema_version"),
            Some(&Json::UInt(u64::from(SERVE_SCHEMA_VERSION)))
        );
        for key in ["cold_warm", "batching", "admission", "server_stats"] {
            assert!(r.get(key).is_some(), "missing {key}");
        }
    }
}
