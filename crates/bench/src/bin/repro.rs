//! `repro` — regenerates every table and figure of *On Analyzing Large
//! Graphs Using GPUs* (IPDPSW 2013) from the trigon reproduction.
//!
//! ```text
//! repro table1|table2|table3|fig1|fig10|fig11|fig12|ablation|workloads|trace|fleet|cluster|all [--csv DIR]
//! repro perf [--quick] [--baseline PATH] [--csv DIR]
//! repro profile [--baseline PATH] [--csv DIR]
//! ```
//!
//! `perf` measures real wall-clock (not modeled seconds) of the counting
//! strategies across a thread sweep and writes
//! `bench_out/BENCH_perf.json`; with `--baseline PATH` it also enforces
//! the committed regression envelope (exit 1 on a >25 % normalized
//! slowdown of the 1-thread fig10 run).
//!
//! `profile` sweeps the simulated performance counters across every
//! executor and writes `bench_out/BENCH_profile.json`; with
//! `--baseline PATH` it enforces the **exact-match** counter gate (exit
//! 1 on any divergence; `TRIGON_PROFILE_SKIP_REGRESSION` skips it).
//!
//! Each experiment prints an aligned text table mirroring the paper's
//! layout and, with `--csv DIR`, also writes `DIR/<exp>.csv`.

use std::io::Write as _;
use trigon_bench::{fig10_graph, fig10_sizes, fig11_graph, fig11_sizes};
use trigon_core::gpu_exec::GpuConfig;
use trigon_core::{table2, Analysis, LayoutKind, Method, RunReport};
use trigon_gpu_sim::coalesce::{nonsequential_pattern, sequential_pattern};
use trigon_gpu_sim::{warp_transactions, ComputeCapability, DeviceSpec};
use trigon_graph::Graph;

/// Runs one pipeline configuration and returns its [`RunReport`].
fn run(g: &Graph, method: Method) -> RunReport {
    Analysis::new(g)
        .method(method)
        .device(DeviceSpec::c1060())
        .run()
        .expect("pipeline run")
}

/// [`run`] with a shared prebuilt ALS decomposition — the figure loops
/// compare several methods on the same graph, and the decomposition
/// depends only on the graph, so building it once per size keeps the
/// sweeps from repeating that work per method.
fn run_with_als(
    g: &Graph,
    als: &std::sync::Arc<Vec<trigon_core::als::Als>>,
    method: Method,
) -> RunReport {
    Analysis::new(g)
        .method(method)
        .device(DeviceSpec::c1060())
        .prebuilt_als(std::sync::Arc::clone(als))
        .run()
        .expect("pipeline run")
}

/// Runs with a fully explicit GPU configuration.
fn run_cfg(g: &Graph, cfg: GpuConfig) -> RunReport {
    Analysis::new(g)
        .method(Method::GpuOptimized)
        .gpu_config(cfg)
        .run()
        .expect("pipeline run")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let out = Output::new(csv_dir);
    match cmd {
        "table1" => table1(&out),
        "table2" => table2_cmd(&out),
        "table3" => table3(&out),
        "fig1" => fig1(&out),
        "fig10" => fig10(&out),
        "fig11" => fig11(&out),
        "fig12" => fig12(&out),
        "ablation" => ablation(&out),
        "workload" => workload(&out),
        "workloads" => workloads_cmd(&out),
        "trace" => trace_capture(&out),
        "fleet" => fleet_cmd(&out),
        "cluster" => cluster_cmd(&out),
        "perf" => perf(&out, &args[1..]),
        "profile" => profile_cmd(&out, &args[1..]),
        "serve" => serve_cmd(&out, &args[1..]),
        "all" => {
            table1(&out);
            table2_cmd(&out);
            table3(&out);
            fig1(&out);
            fig10(&out);
            fig11(&out);
            fig12(&out);
            ablation(&out);
            workload(&out);
            workloads_cmd(&out);
            trace_capture(&out);
            fleet_cmd(&out);
            cluster_cmd(&out);
            profile_cmd(&out, &[]);
            serve_cmd(&out, &[]);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!(
                "usage: repro table1|table2|table3|fig1|fig10|fig11|fig12|ablation|workloads|trace|fleet|cluster|perf|profile|serve|all [--csv DIR]"
            );
            eprintln!("       repro perf [--quick] [--baseline PATH] [--csv DIR]");
            eprintln!("       repro profile [--baseline PATH] [--csv DIR]");
            eprintln!("       repro serve [--quick] [--csv DIR]");
            std::process::exit(2);
        }
    }
}

/// Text + optional CSV sink.
struct Output {
    csv_dir: Option<String>,
}

impl Output {
    fn new(csv_dir: Option<String>) -> Self {
        if let Some(d) = &csv_dir {
            std::fs::create_dir_all(d).expect("create csv dir");
        }
        Self { csv_dir }
    }

    fn section(&self, title: &str) {
        println!("\n==== {title} ====");
    }

    fn csv(&self, name: &str, header: &str, rows: &[String]) {
        let Some(dir) = &self.csv_dir else { return };
        let path = format!("{dir}/{name}.csv");
        let mut f = std::fs::File::create(&path).expect("create csv");
        writeln!(f, "{header}").unwrap();
        for r in rows {
            writeln!(f, "{r}").unwrap();
        }
        println!("  [csv written to {path}]");
    }
}

/// Table I — architecture comparison of the modeled devices.
fn table1(out: &Output) {
    out.section("Table I: architecture comparison of different Nvidia GPUs");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>8} {:>6}",
        "Model", "Cores", "Global(GB)", "Shared(KB)", "Banks", "CC"
    );
    let mut rows = Vec::new();
    for d in DeviceSpec::table1() {
        let gb = d.global_mem_bytes / (1024 * 1024 * 1024);
        let kb = d.shared_mem_bytes / 1024;
        println!(
            "{:<8} {:>6} {:>12} {:>12} {:>8} {:>6}",
            d.name, d.cores, gb, kb, d.shared_banks, d.compute_capability
        );
        rows.push(format!(
            "{},{},{},{},{},{}",
            d.name, d.cores, gb, kb, d.shared_banks, d.compute_capability
        ));
    }
    out.csv("table1", "model,cores,global_gb,shared_kb,banks,cc", &rows);
}

/// Table II — maximum graph sizes per device and storage model.
fn table2_cmd(out: &Output) {
    out.section("Table II: maximum size of graphs on different GPUs");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "Model", "Sh AdjMat", "Sh S-UTM", "Gl AdjMat", "Gl S-UTM"
    );
    let mut rows = Vec::new();
    for r in table2(&DeviceSpec::table1()) {
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            r.device, r.shared_adj, r.shared_sutm, r.global_adj, r.global_sutm
        );
        rows.push(format!(
            "{},{},{},{},{}",
            r.device, r.shared_adj, r.shared_sutm, r.global_adj, r.global_sutm
        ));
    }
    out.csv(
        "table2",
        "model,shared_adjmat,shared_sutm,global_adjmat,global_sutm",
        &rows,
    );
    println!("  (every printed value of the paper's Table II is reproduced exactly)");
}

/// Table III — memory transactions vs compute capability and pattern.
fn table3(out: &Output) {
    out.section(
        "Table III: memory transactions and compute capability (warp reads 128 B as 4 B words)",
    );
    println!(
        "{:<10} {:<16} {:>12} {:>14}",
        "CC", "Pattern", "Bytes", "Transactions"
    );
    let mut rows = Vec::new();
    for seq in [true, false] {
        for cc in ComputeCapability::all() {
            let addrs = if seq {
                sequential_pattern(0, 32, 4)
            } else {
                nonsequential_pattern(0, 32, 4)
            };
            let t = warp_transactions(cc, &addrs, 4).transactions;
            let pat = if seq { "Sequential" } else { "Non-sequential" };
            println!("{:<10} {:<16} {:>12} {:>14}", cc.to_string(), pat, 128, t);
            rows.push(format!("{cc},{pat},128,{t}"));
        }
    }
    out.csv("table3", "cc,pattern,bytes,transactions", &rows);
}

/// Fig. 1 — makespan scheduling of chunks on SMs (the §VI illustration
/// plus measured policies).
fn fig1(out: &Output) {
    out.section("Fig 1: makespan scheduling of chunks on GPU modules");
    let jobs = [3u64, 6, 4, 5, 2, 3, 1];
    println!("instance: jobs {jobs:?} on 4 machines");
    let mut rows = Vec::new();
    for (name, s) in [
        ("round-robin", trigon_sched::round_robin(&jobs, 4)),
        ("list", trigon_sched::list_schedule(&jobs, 4)),
        ("LPT", trigon_sched::lpt(&jobs, 4)),
        ("MULTIFIT", trigon_sched::multifit(&jobs, 4, 10)),
        ("tabu", trigon_sched::tabu_improve(&jobs, 4, 50)),
        ("exact", trigon_sched::exact(&jobs, 4)),
    ] {
        println!(
            "  {:<12} makespan {:>3}  loads {:?}",
            name,
            s.makespan(),
            s.loads
        );
        rows.push(format!("{},{}", name, s.makespan()));
    }
    println!("  lower bound {}", trigon_sched::lower_bound(&jobs, 4));
    out.csv("fig1", "policy,makespan", &rows);
}

/// Fig. 10 — CPU vs GPU triangle counting, 200–1200 nodes.
fn fig10(out: &Output) {
    out.section("Fig 10: counting triangles, CPU vs GPU (G(n, deg 16), modeled seconds)");
    println!(
        "{:>6} {:>12} {:>14} {:>10} {:>10} {:>8}",
        "n", "triangles", "tests", "CPU(s)", "GPU(s)", "speedup"
    );
    let mut rows = Vec::new();
    for n in fig10_sizes() {
        let g = fig10_graph(n);
        let als = std::sync::Arc::new(trigon_core::als::build_als(&g));
        let cpu = run_with_als(&g, &als, Method::CpuFast);
        let gpu = run_with_als(&g, &als, Method::GpuOptimized);
        assert_eq!(cpu.count, gpu.count, "count mismatch at n={n}");
        let speedup = cpu.modeled_s / gpu.modeled_s;
        println!(
            "{:>6} {:>12} {:>14} {:>10.2} {:>10.2} {:>8.2}",
            n, cpu.count, cpu.tests, cpu.modeled_s, gpu.modeled_s, speedup
        );
        rows.push(format!(
            "{n},{},{},{:.4},{:.4},{:.3}",
            cpu.count, cpu.tests, cpu.modeled_s, gpu.modeled_s, speedup
        ));
    }
    out.csv("fig10", "n,triangles,tests,cpu_s,gpu_s,speedup", &rows);
    println!("  paper band: near-parity at small n, 5-6x for n >= 1000");
}

/// Fig. 11 — larger SNAP-like graphs, 5k–25k nodes (+100k point).
fn fig11(out: &Output) {
    out.section("Fig 11: larger graphs (community-ring SNAP stand-in, sampled GPU fidelity)");
    println!(
        "{:>7} {:>12} {:>16} {:>10} {:>10} {:>8}",
        "n", "triangles", "tests", "CPU(s)", "GPU(s)", "speedup"
    );
    let mut rows = Vec::new();
    for n in fig11_sizes() {
        let g = fig11_graph(n);
        let als = std::sync::Arc::new(trigon_core::als::build_als(&g));
        let cpu = run_with_als(&g, &als, Method::CpuFast);
        let gpu = run_with_als(&g, &als, Method::GpuSampled);
        assert_eq!(cpu.count, gpu.count, "count mismatch at n={n}");
        let speedup = cpu.modeled_s / gpu.modeled_s;
        println!(
            "{:>7} {:>12} {:>16} {:>10.1} {:>10.2} {:>8.2}",
            n, cpu.count, cpu.tests, cpu.modeled_s, gpu.modeled_s, speedup
        );
        rows.push(format!(
            "{n},{},{},{:.4},{:.4},{:.3}",
            cpu.count, cpu.tests, cpu.modeled_s, gpu.modeled_s, speedup
        ));
    }
    // The §XI 100,000-node data point (GPU only, like the paper's remark).
    let n = 100_000u32;
    let g = fig11_graph(n);
    let gpu = run(&g, Method::GpuSampled);
    println!(
        "{:>7} {:>12} {:>16} {:>10} {:>10.1}   (paper: 170-180 s)",
        n, gpu.count, gpu.tests, "-", gpu.modeled_s
    );
    rows.push(format!(
        "{n},{},{},,{:.4},",
        gpu.count, gpu.tests, gpu.modeled_s
    ));
    out.csv("fig11", "n,triangles,tests,cpu_s,gpu_s,speedup", &rows);
    println!("  paper band: ~10x GPU speedup at 5k-25k");
}

/// Fig. 12 — naive vs primitive-optimized GPU implementation.
fn fig12(out: &Output) {
    out.section("Fig 12: naive vs improved GPU (coalescing + camping avoidance)");
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "n", "naive(s)", "improved(s)", "gain%", "camp(nv)", "camp(opt)"
    );
    let mut rows = Vec::new();
    for n in fig10_sizes() {
        let g = fig10_graph(n);
        let als = std::sync::Arc::new(trigon_core::als::build_als(&g));
        let nv = run_with_als(&g, &als, Method::GpuNaive);
        let op = run_with_als(&g, &als, Method::GpuOptimized);
        assert_eq!(nv.count, op.count, "count mismatch at n={n}");
        let gain = 100.0 * (nv.modeled_s - op.modeled_s) / nv.modeled_s;
        let (cn, co) = (
            nv.gpu.as_ref().unwrap().camping_factor,
            op.gpu.as_ref().unwrap().camping_factor,
        );
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>8.1} {:>10.2} {:>10.2}",
            n, nv.modeled_s, op.modeled_s, gain, cn, co
        );
        rows.push(format!(
            "{n},{:.4},{:.4},{:.2},{:.3},{:.3}",
            nv.modeled_s, op.modeled_s, gain, cn, co
        ));
    }
    out.csv(
        "fig12",
        "n,naive_s,improved_s,gain_pct,camping_naive,camping_opt",
        &rows,
    );
    println!("  paper band: ~6-8 % improvement from the primitives");
}

/// Workload anatomy: how Algorithm 2's tests distribute over the ALS of
/// each evaluation graph — the quantity every timing model scales with.
fn workload(out: &Output) {
    use trigon_core::build_als;
    out.section("Workload anatomy: per-ALS test distribution");
    let mut rows = Vec::new();
    for (label, g) in [
        ("fig10 n=1200 (G(n,p) deg16)", fig10_graph(1200)),
        ("fig11 n=5000 (community ring)", fig11_graph(5000)),
    ] {
        let als = trigon_core::als::build_als(&g);
        let _ = build_als; // fully-qualified call above keeps the import honest
        let counts: Vec<u128> = als.iter().map(|a| a.test_count(3)).collect();
        let total: u128 = counts.iter().sum();
        let max = counts.iter().copied().max().unwrap_or(0);
        let dominant = if total > 0 {
            100.0 * max as f64 / total as f64
        } else {
            0.0
        };
        println!(
            "  {label:<32} ALS {:>4}  tests {:>14}  dominant ALS {:>5.1} %",
            als.len(),
            total,
            dominant
        );
        rows.push(format!("{label},{},{total},{dominant:.2}", als.len()));
        // Top three ALS by workload.
        let mut idx: Vec<usize> = (0..counts.len()).collect();
        idx.sort_unstable_by_key(|&i| std::cmp::Reverse(counts[i]));
        for &i in idx.iter().take(3) {
            let a = &als[i];
            println!(
                "      ALS {:>3}: first {:>5} x second {:>5} -> {:>14} tests",
                a.index,
                a.a(),
                a.b(),
                counts[i]
            );
        }
    }
    out.csv("workload", "suite,als,total_tests,dominant_pct", &rows);
    println!("  (the G(n,p) suite is dominated by one huge ALS; the community ring");
    println!("   spreads work across many — which is what makes SS-V splitting useful)");
}

/// Cross-workload sweep of the `ChunkKernel` API: every workload on the
/// fig10 ladder, CPU vs simulated GPU, bit-agreement enforced.
fn workloads_cmd(out: &Output) {
    out.section("Workloads: the ChunkKernel API across every analysis (G(n, deg 16))");
    let result = trigon_bench::run_workloads();
    println!(
        "{:<12} {:>6} {:>12} {:>10} {:>10}  detail",
        "workload", "n", "count", "CPU(s)", "GPU(s)"
    );
    let mut rows = Vec::new();
    for p in &result.points {
        use trigon_core::WorkloadSection as W;
        let detail = match &p.section {
            W::Clustering {
                mean_clustering,
                transitivity,
                ..
            } => format!("mean cc {mean_clustering:.4}, transitivity {transitivity:.4}"),
            W::KTruss {
                k,
                edges_kept,
                edges_peeled,
                ..
            } => format!("k={k}: {edges_kept} kept, {edges_peeled} peeled"),
            W::Enumerate { checksum, .. } => format!("checksum {checksum:#018x}"),
            W::KCount { k } => format!("k={k}"),
            W::Triangles => String::new(),
        };
        println!(
            "{:<12} {:>6} {:>12} {:>10.3} {:>10.3}  {}",
            p.workload, p.n, p.count, p.cpu_s, p.gpu_s, detail
        );
        rows.push(format!(
            "{},{},{},{:.4},{:.4}",
            p.workload, p.n, p.count, p.cpu_s, p.gpu_s
        ));
    }
    std::fs::create_dir_all("bench_out").expect("create bench_out");
    let path = "bench_out/BENCH_workloads.json";
    std::fs::write(path, result.report.to_string_pretty()).expect("write workloads json");
    println!("  [workloads report written to {path}]");
    out.csv("workloads", "workload,n,count,cpu_s,gpu_s", &rows);
}

/// Trace capture: one fully traced gpu-opt run at n = 1000, exported as
/// Chrome trace-event JSON for chrome://tracing / ui.perfetto.dev.
fn trace_capture(out: &Output) {
    out.section("Trace: gpu-opt run at n = 1000, Chrome trace export");
    let g = fig10_graph(1000);
    let r = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .device(DeviceSpec::c1060())
        .telemetry(trigon_core::Level::Trace)
        .run()
        .expect("pipeline run");
    std::fs::create_dir_all("bench_out").expect("create bench_out");
    let path = "bench_out/BENCH_trace.json";
    std::fs::write(path, r.tracer.to_chrome_trace().to_string_pretty()).expect("write trace");
    let t = r.trace.as_ref().expect("trace summary");
    let device_spans = t.device.as_ref().map_or(0, |d| d.spans);
    println!(
        "  {} spans ({device_spans} on the device timeline), makespan {} cycles",
        t.spans,
        t.device.as_ref().map_or(0, |d| d.makespan_cycles)
    );
    println!("  [trace written to {path}]");
}

/// `repro perf` — measured wall-clock baseline (see `trigon_bench::perf`).
fn perf(out: &Output, rest: &[String]) {
    use trigon_bench::{run_perf, PerfOptions};
    let opts = PerfOptions {
        quick: rest.iter().any(|a| a == "--quick"),
        baseline: rest
            .iter()
            .position(|a| a == "--baseline")
            .and_then(|i| rest.get(i + 1))
            .cloned(),
    };
    out.section(if opts.quick {
        "Perf: measured wall-clock baseline (quick)"
    } else {
        "Perf: measured wall-clock baseline"
    });
    let result = run_perf(&opts);
    // Pretty table + CSV straight from the JSON document so the printed
    // numbers and the written file cannot drift apart.
    let mut rows = Vec::new();
    for fig in ["fig10", "fig11"] {
        let Some(trigon_core::Json::Array(graphs)) = result.report.get(fig) else {
            continue;
        };
        println!(
            "  {fig}: {:>7} {:<14} {:>8} {:>14} {:>9}",
            "n", "strategy", "threads", "wall(ms)", "speedup"
        );
        for g in graphs {
            let n = json_u64(g.get("n"));
            let Some(trigon_core::Json::Array(strats)) = g.get("strategies") else {
                continue;
            };
            for s in strats {
                let strategy = match s.get("strategy") {
                    Some(trigon_core::Json::Str(v)) => v.clone(),
                    _ => String::new(),
                };
                let threads = json_u64(s.get("threads"));
                let wall_ns = json_u64(s.get("wall_ns"));
                let speedup = match s.get("speedup_vs_1t") {
                    Some(trigon_core::Json::Float(v)) => format!("{v:.2}"),
                    _ => "-".to_string(),
                };
                println!(
                    "  {fig}: {:>7} {:<14} {:>8} {:>14.2} {:>9}",
                    n,
                    strategy,
                    threads,
                    wall_ns as f64 / 1e6,
                    speedup
                );
                rows.push(format!(
                    "{fig},{n},{strategy},{threads},{wall_ns},{speedup}"
                ));
            }
            if let Some(h) = g.get("combination_vs_intersection") {
                let fmt = |k: &str| match h.get(k) {
                    Some(trigon_core::Json::Float(v)) => format!("{v:.0}x"),
                    _ => "-".to_string(),
                };
                println!(
                    "  {fig}: {n:>7} intersection speedup over combination: cpu {}, gpu {}",
                    fmt("cpu_speedup"),
                    fmt("gpu_speedup")
                );
            }
        }
    }
    if let Some(tele) = result
        .report
        .get("overhead")
        .and_then(|o| o.get("telemetry"))
    {
        let off = json_u64(tele.get("off_ns"));
        let std_ns = json_u64(tele.get("standard_ns"));
        let pct = match tele.get("overhead_pct") {
            Some(trigon_core::Json::Float(v)) => format!("{v:.1}"),
            _ => "-".to_string(),
        };
        println!(
            "  telemetry overhead: Off {:.2} ms, Standard {:.2} ms ({pct} %)",
            off as f64 / 1e6,
            std_ns as f64 / 1e6
        );
    }
    std::fs::create_dir_all("bench_out").expect("create bench_out");
    let path = "bench_out/BENCH_perf.json";
    std::fs::write(path, result.report.to_string_pretty()).expect("write perf json");
    println!("  [perf report written to {path}]");
    out.csv(
        "perf",
        "suite,n,strategy,threads,wall_ns,speedup_vs_1t",
        &rows,
    );
    if let Some(msg) = result.regression {
        eprintln!("  {msg}");
        std::process::exit(1);
    }
}

/// `repro profile` — simulated performance-counter sweep with the
/// exact-match regression gate (see `trigon_bench::profile`).
fn profile_cmd(out: &Output, rest: &[String]) {
    use trigon_core::Json;
    let baseline = rest
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| rest.get(i + 1))
        .cloned();
    out.section("Profile: simulated performance counters across executors (G(n, deg 16))");
    let result = trigon_bench::run_profile(baseline.as_deref());
    println!(
        "{:<16} {:>6} {:>10} {:>14} {:>14} {:>14} {:>7}",
        "method", "n", "count", "transactions", "compute(cyc)", "mem(cyc)", "coal%"
    );
    let mut rows = Vec::new();
    if let Some(Json::Array(points)) = result.report.get("points") {
        for p in points {
            let method = match p.get("method") {
                Some(Json::Str(v)) => v.clone(),
                _ => String::new(),
            };
            let n = json_u64(p.get("n"));
            let count = json_u64(p.get("count"));
            let counters = p.get("profile").and_then(|j| j.get("counters"));
            let tx = json_u64(counters.and_then(|c| c.get("transactions")));
            let compute = json_u64(counters.and_then(|c| c.get("compute_cycles")));
            let mem = json_u64(counters.and_then(|c| c.get("mem_cycles")));
            let coal = match p
                .get("profile")
                .and_then(|j| j.get("derived"))
                .and_then(|d| d.get("coalescing_efficiency"))
            {
                Some(Json::Float(v)) => format!("{:.1}", v * 100.0),
                _ => "-".to_string(),
            };
            println!("{method:<16} {n:>6} {count:>10} {tx:>14} {compute:>14} {mem:>14} {coal:>7}");
            rows.push(format!("{method},{n},{count},{tx},{compute},{mem},{coal}"));
        }
    }
    std::fs::create_dir_all("bench_out").expect("create bench_out");
    let path = "bench_out/BENCH_profile.json";
    std::fs::write(path, result.report.to_string_pretty()).expect("write profile json");
    println!("  [profile report written to {path}]");
    out.csv(
        "profile",
        "method,n,count,transactions,compute_cycles,mem_cycles,coalescing_pct",
        &rows,
    );
    if let Some(msg) = result.regression {
        eprintln!("  {msg}");
        std::process::exit(1);
    }
}

/// `repro serve` — the serving-tier benchmark: cold-vs-warm cache
/// replay, batch H2D amortization, and the Eqs. 1–2 admission sweep
/// (see `trigon_bench::serve`).
fn serve_cmd(out: &Output, rest: &[String]) {
    let quick = rest.iter().any(|a| a == "--quick");
    out.section(if quick {
        "Serve: persistent serving tier (quick)"
    } else {
        "Serve: persistent serving tier (cold/warm, batching, admission)"
    });
    let result = trigon_bench::run_serve(quick);
    println!(
        "{:<8} {:<12} {:>14} {:>12} {:>10}",
        "graph", "workload", "cold(ms)", "warm(ms)", "speedup"
    );
    let mut rows = Vec::new();
    for p in &result.points {
        println!(
            "{:<8} {:<12} {:>14.3} {:>12.4} {:>9.0}x",
            p.graph,
            p.workload,
            p.cold_ns as f64 / 1e6,
            p.warm_ns as f64 / 1e6,
            p.speedup
        );
        rows.push(format!(
            "{},{},{},{},{:.2}",
            p.graph, p.workload, p.cold_ns, p.warm_ns, p.speedup
        ));
    }
    if let Some(trigon_core::Json::Array(decisions)) = result
        .report
        .get("admission")
        .and_then(|a| a.get("decisions"))
    {
        println!("  admission (C2050 primary, 2xC2050 roster):");
        for d in decisions {
            let verdict = match d.get("verdict") {
                Some(trigon_core::Json::Str(v)) => v.clone(),
                _ => String::new(),
            };
            let target = match d.get("target") {
                Some(trigon_core::Json::Str(v)) => format!(" -> {v}"),
                _ => String::new(),
            };
            println!("    n={:>7} {verdict}{target}", json_u64(d.get("n")));
        }
    }
    println!("  {} admission rejection(s) recorded", result.rejections);
    std::fs::create_dir_all("bench_out").expect("create bench_out");
    let path = "bench_out/BENCH_serve.json";
    std::fs::write(path, result.report.to_string_pretty()).expect("write serve json");
    println!("  [serve report written to {path}]");
    out.csv("serve", "graph,workload,cold_ns,warm_ns,speedup", &rows);
}

/// Strong scaling of the multi-device fleet path (1..=8 C2050s), counts
/// pinned bit-identical to the CPU reference at every size.
fn fleet_cmd(out: &Output) {
    out.section("Fleet: strong scaling of multi-device sharded execution");
    let result = trigon_bench::run_fleet_scaling();
    println!("  triangles {} at every fleet size", result.triangles);
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12} {:>8} {:>8}",
        "fleet", "makespan(cyc)", "compute(cyc)", "H2D(cyc)", "D2D(cyc)", "imbal", "speedup"
    );
    let mut rows = Vec::new();
    for p in &result.points {
        println!(
            "{:<10} {:>14} {:>14} {:>12} {:>12} {:>8.3} {:>8.2}",
            p.spec,
            p.makespan_cycles,
            p.compute_cycles,
            p.h2d_cycles,
            p.d2d_cycles,
            p.imbalance,
            p.speedup
        );
        rows.push(format!(
            "{},{},{},{},{},{:.4},{:.4}",
            p.devices,
            p.makespan_cycles,
            p.compute_cycles,
            p.h2d_cycles,
            p.d2d_cycles,
            p.imbalance,
            p.speedup
        ));
    }
    std::fs::create_dir_all("bench_out").expect("create bench_out");
    let path = "bench_out/BENCH_fleet.json";
    std::fs::write(path, result.report.to_string_pretty()).expect("write fleet json");
    println!("  [fleet report written to {path}]");
    out.csv(
        "fleet",
        "devices,makespan_cycles,compute_cycles,h2d_cycles,d2d_cycles,imbalance,speedup",
        &rows,
    );
}

/// Weak- and strong-scaling sweeps of the simulated cluster tier
/// (1..=64 single-C2050 nodes), counts pinned bit-identical to the CPU
/// reference at every point.
fn cluster_cmd(out: &Output) {
    out.section("Cluster: weak + strong scaling of simulated multi-node execution");
    let result = trigon_bench::run_cluster_scaling();
    let mut rows = Vec::new();
    for (title, points) in [("strong", &result.strong), ("weak", &result.weak)] {
        println!("  {title} scaling (1xC2050 nodes, IB-QDR inter-node):");
        println!(
            "{:<12} {:>8} {:>10} {:>5} {:>14} {:>12} {:>12} {:>8} {:>8}",
            "cluster",
            "n",
            "triangles",
            "part",
            "makespan(cyc)",
            "uplink(cyc)",
            "ghost(cyc)",
            "imbal",
            "scaling"
        );
        for p in points {
            println!(
                "{:<12} {:>8} {:>10} {:>5} {:>14} {:>12} {:>12} {:>8.3} {:>8.2}",
                p.spec,
                p.n,
                p.triangles,
                p.strategy,
                p.makespan_cycles,
                p.uplink_cycles,
                p.ghost_cycles,
                p.imbalance,
                p.scaling
            );
            rows.push(format!(
                "{title},{},{},{},{},{},{},{},{},{:.4},{:.4}",
                p.nodes,
                p.n,
                p.m,
                p.triangles,
                p.strategy,
                p.makespan_cycles,
                p.uplink_cycles,
                p.ghost_cycles,
                p.imbalance,
                p.scaling
            ));
        }
    }
    std::fs::create_dir_all("bench_out").expect("create bench_out");
    let path = "bench_out/BENCH_cluster.json";
    std::fs::write(path, result.report.to_string_pretty()).expect("write cluster json");
    println!("  [cluster report written to {path}]");
    out.csv(
        "cluster",
        "sweep,nodes,n,m,triangles,strategy,makespan_cycles,uplink_cycles,ghost_cycles,imbalance,scaling",
        &rows,
    );
}

/// Numeric JSON accessor for the perf table printer.
fn json_u64(v: Option<&trigon_core::Json>) -> u64 {
    match v {
        Some(trigon_core::Json::UInt(u)) => *u,
        Some(trigon_core::Json::Int(i)) => *i as u64,
        _ => 0,
    }
}

/// Ablations beyond the paper: which primitive buys what, §VIII strategy
/// load balance, and storage footprints.
fn ablation(out: &Output) {
    out.section("Ablation A: layout x schedule at n = 1000");
    let g = fig10_graph(1000);
    let mut rows = Vec::new();
    println!(
        "{:<24} {:<12} {:>10} {:>10}",
        "layout", "schedule", "GPU(s)", "camping"
    );
    for (lname, layout) in [
        ("Monolithic", LayoutKind::Monolithic),
        ("AlsPartitionAligned", LayoutKind::AlsPartitionAligned),
    ] {
        for (sname, sched) in [
            ("RoundRobin", trigon_core::SchedulePolicy::RoundRobin),
            ("Greedy", trigon_core::SchedulePolicy::Greedy),
            ("Lpt", trigon_core::SchedulePolicy::Lpt),
        ] {
            let mut cfg = GpuConfig::naive(DeviceSpec::c1060());
            cfg.layout = layout;
            cfg.schedule = sched;
            let r = run_cfg(&g, cfg);
            let d = r.gpu.as_ref().unwrap();
            println!(
                "{:<24} {:<12} {:>10.3} {:>10.2}",
                lname, sname, r.modeled_s, d.camping_factor
            );
            rows.push(format!(
                "{lname},{sname},{:.4},{:.3}",
                r.modeled_s, d.camping_factor
            ));
        }
    }
    out.csv(
        "ablation_layout_schedule",
        "layout,schedule,gpu_s,camping",
        &rows,
    );

    out.section("Ablation B: combination work-division strategies (n = 1000, k = 3)");
    let n = 1000u64;
    let total = trigon_combin::binom(n, 3);
    let threads = n - 2;
    let c_loads = trigon_combin::leading_element_loads(n, 3);
    let c_stats = trigon_combin::DivisionStats::from_loads(&c_loads);
    let d_loads: Vec<u128> = trigon_combin::equal_division(total, threads)
        .iter()
        .map(|r| r.len)
        .collect();
    let d_stats = trigon_combin::DivisionStats::from_loads(&d_loads);
    println!(
        "{:<26} {:>10} {:>14} {:>12}",
        "strategy", "threads", "max load", "imbalance"
    );
    println!(
        "{:<26} {:>10} {:>14} {:>12.3}",
        "C: leading-element split", c_stats.threads, c_stats.max, c_stats.imbalance
    );
    println!(
        "{:<26} {:>10} {:>14} {:>12.3}",
        "D: combinadics equal div", d_stats.threads, d_stats.max, d_stats.imbalance
    );
    let mut strategy_rows = vec![
        format!(
            "division,C,{n},{},{},{},,",
            c_stats.threads, c_stats.max, c_stats.imbalance
        ),
        format!(
            "division,D,{n},{},{},{},,",
            d_stats.threads, d_stats.max, d_stats.imbalance
        ),
    ];

    out.section("Ablation B2: combination vs degree-ordered intersection (modeled seconds)");
    {
        println!(
            "{:>6} {:<14} {:>14} {:>14} {:>10}",
            "n", "pair", "combination(s)", "intersect(s)", "speedup"
        );
        // fig10 scales race both the CPU models and the simulated GPUs;
        // at the fig11 scale the exhaustive combination kernel is
        // infeasible, so the sampled GPU stands in for it.
        let mut race = |suite: &str, g: &Graph, pairs: &[(&str, Method, Method)]| {
            for &(pair, comb_m, inter_m) in pairs {
                let comb = run(g, comb_m);
                let inter = run(g, inter_m);
                assert_eq!(
                    comb.count,
                    inter.count,
                    "{pair} at n={}: counts must be bit-identical",
                    g.n()
                );
                let speedup = comb.modeled_s / inter.modeled_s;
                println!(
                    "{:>6} {:<14} {:>14.4} {:>14.4} {:>10.1}",
                    g.n(),
                    pair,
                    comb.modeled_s,
                    inter.modeled_s,
                    speedup
                );
                strategy_rows.push(format!(
                    "algorithm,{pair}-{suite},{},1,,,{:.6},{:.2}",
                    g.n(),
                    inter.modeled_s,
                    speedup
                ));
            }
        };
        for n in [400u32, 800, 1200] {
            let g = fig10_graph(n);
            race(
                "fig10",
                &g,
                &[
                    ("cpu", Method::CpuFast, Method::CpuIntersect),
                    ("gpu", Method::GpuOptimized, Method::GpuSimIntersect),
                ],
            );
        }
        let g = fig11_graph(5_000);
        race(
            "fig11",
            &g,
            &[
                ("cpu", Method::CpuFast, Method::CpuIntersect),
                ("gpu", Method::GpuSampled, Method::GpuSimIntersect),
            ],
        );
        println!("  degree-ordered intersection replaces the combination candidate space with");
        println!("  per-edge adjacency intersections; the modeled gap widens with n");
    }
    out.csv(
        "ablation_strategies",
        "axis,strategy,n,threads,max_load,imbalance,modeled_s,speedup_vs_combination",
        &strategy_rows,
    );

    out.section("Ablation D: GPU work division, strategy C vs D (n = 600, static dispatch)");
    {
        let g = fig10_graph(600);
        let mut rows = Vec::new();
        println!(
            "{:<28} {:>8} {:>12} {:>10}",
            "division", "blocks", "imbalance", "kernel(s)"
        );
        for (name, div) in [
            ("D: equal blocks", trigon_core::WorkDivision::EqualBlocks),
            (
                "C: leading element",
                trigon_core::WorkDivision::LeadingElement,
            ),
        ] {
            let mut cfg = GpuConfig::optimized(DeviceSpec::c1060());
            cfg.division = div;
            cfg.schedule = trigon_core::SchedulePolicy::RoundRobin;
            let r = run_cfg(&g, cfg);
            let d = r.gpu.as_ref().unwrap();
            println!(
                "{:<28} {:>8} {:>12.4} {:>10.3}",
                name, d.blocks, d.schedule_imbalance, d.kernel_s
            );
            rows.push(format!(
                "{name},{},{:.4},{:.4}",
                d.blocks, d.schedule_imbalance, d.kernel_s
            ));
        }
        out.csv(
            "ablation_division",
            "division,blocks,imbalance,kernel_s",
            &rows,
        );
    }

    out.section("Ablation E: SS-V hybrid shared/global execution (community ring, C1060)");
    {
        let mut rows = Vec::new();
        println!(
            "{:>6} {:>10} {:>10} {:>12} {:>12} {:>12}",
            "n", "sharedALS", "globalALS", "LPT(s)", "Eq6(s)", "global-only(s)"
        );
        for n in [1000u32, 3000, 6000] {
            let g = trigon_graph::gen::community_ring(n, 150, 0.25, 3, 42);
            let hr = run(&g, Method::Hybrid);
            let h = hr.hybrid.as_ref().unwrap();
            let eq6 = hr.eq6.as_ref().unwrap();
            let global_only = run(&g, Method::GpuSampled);
            let go_kernel = global_only.gpu.as_ref().unwrap().kernel_s;
            println!(
                "{n:>6} {:>10} {:>10} {:>12.4} {:>12.4} {:>12.4}",
                h.shared_als, h.global_als, eq6.simulated_s, eq6.predicted_s, go_kernel
            );
            assert_eq!(hr.count, global_only.count);
            rows.push(format!(
                "{n},{},{},{:.5},{:.5},{:.5}",
                h.shared_als, h.global_als, eq6.simulated_s, eq6.predicted_s, go_kernel
            ));
        }
        out.csv(
            "ablation_hybrid",
            "n,shared_als,global_als,lpt_s,eq6_s,global_only_s",
            &rows,
        );
        println!("  staging chunks in shared memory + LPT beats both the Eq.6 naive pipeline");
        println!("  and the all-global execution, as SS-V argues");
    }

    out.section("Ablation C: storage footprints of the SS-VIII strategies (n = 100k, k = 3)");
    for (name, strat) in [
        (
            "A: precomputed store",
            trigon_combin::Strategy::PrecomputedStore,
        ),
        (
            "B: sequential on-the-fly",
            trigon_combin::Strategy::SequentialOnTheFly,
        ),
        (
            "C: leading-element split",
            trigon_combin::Strategy::LeadingElementSplit { lead: 1 },
        ),
        ("D: equal division", trigon_combin::Strategy::EqualDivision),
    ] {
        match strat.storage_bits(100_000, 3, 30_720) {
            Some(b) => {
                let mib = b as f64 / 8.0 / 1024.0 / 1024.0;
                println!("  {name:<28} {b:>28} bits ({mib:.1} MiB)");
            }
            None => println!("  {name:<28} overflow (beyond u128)"),
        }
    }
}
