//! Weak- and strong-scaling sweeps of the simulated cluster tier.
//!
//! Strong scaling runs one fixed 64-community workload across clusters
//! of 1..=64 single-C2050 nodes; weak scaling grows the graph with the
//! node count (one community per node). Every point's count is asserted
//! bit-identical to the CPU reference — the sweep doubles as the
//! cluster determinism gate. `repro cluster` renders both tables and
//! writes the document to `bench_out/BENCH_cluster.json`.

use trigon_core::{Analysis, ClusterSpec, Json, Level, Method};
use trigon_graph::{gen, triangles, Graph};

use crate::suites::SEED;

/// Schema version of `BENCH_cluster.json`; bump on shape changes.
pub const CLUSTER_SCHEMA_VERSION: u32 = 1;

/// Largest cluster the sweeps grow to.
pub const CLUSTER_MAX_NODES: usize = 64;

/// Node counts both sweeps visit (powers of two up to
/// [`CLUSTER_MAX_NODES`]).
#[must_use]
pub fn cluster_node_counts() -> Vec<usize> {
    let mut v = Vec::new();
    let mut d = 1;
    while d <= CLUSTER_MAX_NODES {
        v.push(d);
        d *= 2;
    }
    v
}

/// Community size of both sweep graphs: small enough that a 64-node
/// weak-scaling run stays fast, large enough that each node has real
/// kernel work.
const COMMUNITY: u32 = 50;

/// The strong-scaling workload: a ring of [`CLUSTER_MAX_NODES`]
/// communities, so even the largest cluster has one component per node
/// to own.
#[must_use]
pub fn cluster_strong_graph() -> Graph {
    gen::community_ring(
        COMMUNITY * CLUSTER_MAX_NODES as u32,
        COMMUNITY,
        0.3,
        2,
        SEED,
    )
}

/// The weak-scaling workload at `nodes` nodes: one community per node,
/// so per-node work is constant as the cluster grows.
#[must_use]
pub fn cluster_weak_graph(nodes: usize) -> Graph {
    gen::community_ring(COMMUNITY * nodes as u32, COMMUNITY, 0.3, 2, SEED)
}

/// One point of a scaling curve.
#[derive(Debug, Clone)]
pub struct ClusterPoint {
    /// Node count (homogeneous 1xC2050 nodes).
    pub nodes: usize,
    /// Rendered cluster spec, e.g. `"4x(C2050)"`.
    pub spec: String,
    /// Vertices of the point's graph.
    pub n: u32,
    /// Edges of the point's graph.
    pub m: usize,
    /// Exact triangle count (asserted equal to the CPU reference).
    pub triangles: u64,
    /// Partition layout the cost model picked (`"1d"` / `"2d"`).
    pub strategy: String,
    /// Outer cluster makespan (slowest node's uplink + ghost + fleet).
    pub makespan_cycles: u64,
    /// Summed kernel cycles across all nodes.
    pub compute_cycles: u64,
    /// Summed contended partition-upload cycles on the inter-node tier.
    pub uplink_cycles: u64,
    /// Summed ghost-vertex exchange cycles on the inter-node tier.
    pub ghost_cycles: u64,
    /// Summed ghost bytes exchanged between nodes.
    pub ghost_bytes: u64,
    /// Max / mean node finish time (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Speedup: the 1-node makespan **on the same graph** over this
    /// makespan (ideal = `nodes`). Saturates at `serial / max-ALS`
    /// cycles — an adjacent level set is the atomic unit of work, so
    /// the heaviest single ALS bounds cluster parallelism.
    pub scaling: f64,
}

/// Outcome of both sweeps: the table rows plus the JSON document.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Strong-scaling rows, one per node count.
    pub strong: Vec<ClusterPoint>,
    /// Weak-scaling rows, one per node count.
    pub weak: Vec<ClusterPoint>,
    /// The full `BENCH_cluster.json` document.
    pub report: Json,
}

/// Runs one cluster point and converts its report section.
///
/// # Panics
///
/// Panics if the cluster count diverges from the CPU reference count.
fn run_point(g: &Graph, nodes: usize, base_makespan: u64) -> ClusterPoint {
    let expect = triangles::count_edge_iterator(g);
    let spec = ClusterSpec::parse(&format!("{nodes}xC2050")).expect("cluster spec");
    let report = Analysis::new(g)
        .method(Method::GpuOptimized)
        .cluster(spec)
        .telemetry(Level::Off)
        .run()
        .expect("cluster run");
    assert_eq!(
        report.count, expect,
        "{nodes} nodes: cluster count diverged from the CPU reference"
    );
    let cl = report.cluster.expect("cluster section");
    ClusterPoint {
        nodes,
        spec: cl.spec,
        n: g.n(),
        m: g.m(),
        triangles: expect,
        strategy: cl.strategy,
        makespan_cycles: cl.makespan_cycles,
        compute_cycles: cl.compute_cycles,
        uplink_cycles: cl.uplink_cycles,
        ghost_cycles: cl.ghost_cycles,
        ghost_bytes: cl.ghost_bytes,
        imbalance: cl.imbalance,
        scaling: if base_makespan == 0 {
            1.0
        } else {
            base_makespan as f64 / cl.makespan_cycles.max(1) as f64
        },
    }
}

/// Runs both sweeps up to `max_nodes` (clamped to the power-of-two
/// ladder); [`run_cluster_scaling`] uses the full 64-node ladder.
///
/// # Panics
///
/// Panics if any point disagrees with the CPU reference count.
#[must_use]
pub fn run_cluster_scaling_to(max_nodes: usize) -> ClusterOutcome {
    let counts: Vec<usize> = cluster_node_counts()
        .into_iter()
        .filter(|&d| d <= max_nodes)
        .collect();
    let strong_g = cluster_strong_graph();
    let mut strong = Vec::with_capacity(counts.len());
    let mut base = 0u64;
    for &d in &counts {
        let p = run_point(&strong_g, d, base);
        if d == 1 {
            base = p.makespan_cycles;
        }
        strong.push(p);
    }
    let mut weak = Vec::with_capacity(counts.len());
    for &d in &counts {
        let g = cluster_weak_graph(d);
        // The ring bridges keep every weak graph connected, so per-node
        // work is not exactly constant; speedup is measured against a
        // serial (1-node) run on the same graph instead of the d = 1
        // point's graph.
        let serial = if d == 1 {
            0
        } else {
            run_point(&g, 1, 0).makespan_cycles
        };
        weak.push(run_point(&g, d, serial));
    }
    let report = cluster_json(&strong_g, &strong, &weak);
    ClusterOutcome {
        strong,
        weak,
        report,
    }
}

/// Runs the full 1..=64-node weak- and strong-scaling sweeps.
///
/// # Panics
///
/// Panics if any point disagrees with the CPU reference count.
#[must_use]
pub fn run_cluster_scaling() -> ClusterOutcome {
    run_cluster_scaling_to(CLUSTER_MAX_NODES)
}

fn point_json(p: &ClusterPoint) -> Json {
    let mut o = Json::object();
    o.set("nodes", Json::UInt(p.nodes as u64));
    o.set("spec", Json::Str(p.spec.clone()));
    o.set("n", Json::UInt(u64::from(p.n)));
    o.set("m", Json::UInt(p.m as u64));
    o.set("triangles", Json::UInt(p.triangles));
    o.set("strategy", Json::Str(p.strategy.clone()));
    o.set("makespan_cycles", Json::UInt(p.makespan_cycles));
    o.set("compute_cycles", Json::UInt(p.compute_cycles));
    o.set("uplink_cycles", Json::UInt(p.uplink_cycles));
    o.set("ghost_cycles", Json::UInt(p.ghost_cycles));
    o.set("ghost_bytes", Json::UInt(p.ghost_bytes));
    o.set("imbalance", Json::Float(p.imbalance));
    o.set("scaling", Json::Float(p.scaling));
    o
}

fn cluster_json(strong_g: &Graph, strong: &[ClusterPoint], weak: &[ClusterPoint]) -> Json {
    let mut doc = Json::object();
    doc.set(
        "schema_version",
        Json::UInt(u64::from(CLUSTER_SCHEMA_VERSION)),
    );
    doc.set("bench_meta", crate::meta::bench_meta());
    let mut w = Json::object();
    w.set("model", Json::Str("community_ring".to_string()));
    w.set("n", Json::UInt(u64::from(strong_g.n())));
    w.set("m", Json::UInt(strong_g.m() as u64));
    doc.set("strong_workload", w);
    doc.set("node", Json::Str("1xC2050".to_string()));
    doc.set("inter_tier", Json::Str("IB-QDR".to_string()));
    doc.set(
        "strong",
        Json::Array(strong.iter().map(point_json).collect()),
    );
    doc.set("weak", Json::Array(weak.iter().map(point_json).collect()));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_sweeps_pin_counts_and_scale() {
        // 8 nodes keeps the test fast; `repro cluster` runs the full
        // 64-node ladder.
        let o = run_cluster_scaling_to(8);
        assert_eq!(o.strong.len(), 4);
        assert_eq!(o.weak.len(), 4);
        assert!((o.strong[0].scaling - 1.0).abs() < 1e-12);
        let eight = &o.strong[3];
        assert!(
            eight.makespan_cycles < o.strong[0].makespan_cycles,
            "8 nodes must beat 1 on the strong curve"
        );
        assert!(
            eight.uplink_cycles > 0,
            "a real multi-node point pays uplink"
        );
        // Weak scaling: per-node work is constant, so the makespan may
        // drift with imbalance but must stay within a small factor.
        let w8 = &o.weak[3];
        assert!(
            w8.scaling > 0.2,
            "weak efficiency collapsed: {}",
            w8.scaling
        );
        // Triangle totals grow with the weak graphs.
        assert!(o.weak[3].triangles > o.weak[0].triangles);
    }
}
