//! # trigon-bench
//!
//! Shared workload suites for the `repro` harness (every table and figure
//! of the paper) and the Criterion benches. Keeping the workload
//! definitions here guarantees the harness, the benches and the tests all
//! measure the same graphs.

#![deny(missing_docs)]

pub mod cluster;
pub mod fleet;
pub mod meta;
pub mod perf;
pub mod profile;
pub mod serve;
pub mod suites;
pub mod workloads;

pub use cluster::{
    cluster_node_counts, cluster_strong_graph, cluster_weak_graph, run_cluster_scaling,
    run_cluster_scaling_to, ClusterOutcome, ClusterPoint, CLUSTER_MAX_NODES,
    CLUSTER_SCHEMA_VERSION,
};
pub use fleet::{
    fleet_graph, run_fleet_scaling, FleetOutcome, FleetPoint, FLEET_MAX_DEVICES,
    FLEET_SCHEMA_VERSION,
};
pub use meta::bench_meta;
pub use perf::{run_perf, PerfOptions, PerfOutcome, PERF_SCHEMA_VERSION};
pub use profile::{
    profile_sizes, run_profile, run_profile_on, ProfileOutcome, PROFILE_SCHEMA_VERSION,
};
pub use serve::{run_serve, ColdWarmPoint, ServeOutcome, SERVE_SCHEMA_VERSION, WARM_SPEEDUP_FLOOR};
pub use suites::{fig10_graph, fig10_sizes, fig11_graph, fig11_sizes, SEED};
pub use workloads::{
    kcount_sizes, run_workloads, run_workloads_on, workloads_sizes, WorkloadPoint,
    WorkloadsOutcome, WORKLOADS_SCHEMA_VERSION,
};
