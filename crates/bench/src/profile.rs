//! Simulated performance-counter sweep — the `repro profile` command.
//!
//! Runs the fig10 evaluation graphs through every executor (CPU
//! reference, CPU intersection, naive GPU, optimized GPU, simulated
//! intersection GPU, hybrid shared/global, and a two-device fleet) and
//! collects each run's [`ProfileSection`] — the
//! per-run counter totals, derived metrics, hotspots, and roofline
//! placements. `repro profile` renders the table and writes the document
//! to `bench_out/BENCH_profile.json`.
//!
//! Because every counter is priced deterministically at simulate time
//! (never measured), the sweep admits an **exact-match** regression
//! gate: with `--baseline PATH` the rendered points must equal the
//! committed baseline byte for byte. Any divergence — one transaction,
//! one cycle — fails, which catches accidental cost-model drift the
//! tolerance-band wall-clock gate (`repro perf`) never could. Bless a
//! deliberate cost-model change by deleting the baseline, re-running,
//! and committing the rewritten file. `TRIGON_PROFILE_SKIP_REGRESSION`
//! skips the gate (escape hatch for exploratory cost-model work).
//!
//! [`ProfileSection`]: trigon_core::ProfileSection

use trigon_core::{Analysis, FleetSpec, Json, Level, Method, ProfileSection, RunReport};

use crate::suites::fig10_graph;

/// Schema version of `BENCH_profile.json`; bump on shape changes.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Outcome of the sweep: the report plus the exact-match verdict.
pub struct ProfileOutcome {
    /// The full `BENCH_profile.json` document.
    pub report: Json,
    /// `Some(message)` when the baseline gate failed.
    pub regression: Option<String>,
}

/// The graph sizes the sweep covers. Counters are simulated, not
/// measured, so the sweep is always the same (no quick/full split): the
/// committed baseline and every CI run pin the identical point set.
#[must_use]
pub fn profile_sizes() -> Vec<u32> {
    vec![300, 600]
}

/// The executors swept at every size (the fleet point is added on top).
const METHODS: [(&str, Method); 6] = [
    ("cpu-fast", Method::CpuFast),
    ("cpu-intersect", Method::CpuIntersect),
    ("gpu-naive", Method::GpuNaive),
    ("gpu-opt", Method::GpuOptimized),
    ("gpu-intersect", Method::GpuSimIntersect),
    ("hybrid", Method::Hybrid),
];

fn profile_point(label: &str, n: u32, r: &RunReport) -> Json {
    let mut o = Json::object();
    o.set("method", Json::Str(label.to_string()));
    o.set("n", Json::UInt(u64::from(n)));
    o.set("count", Json::UInt(r.count));
    o.set(
        "profile",
        r.profile
            .as_ref()
            .map_or(Json::Null, ProfileSection::to_json),
    );
    o
}

/// Runs the counter sweep over the default size ladder.
///
/// # Panics
///
/// Panics if any executor fails or any pair of executors disagrees on a
/// triangle count — the sweep doubles as a determinism gate.
#[must_use]
pub fn run_profile(baseline: Option<&str>) -> ProfileOutcome {
    run_profile_on(&profile_sizes(), baseline)
}

/// [`run_profile`] over an explicit size ladder.
#[must_use]
pub fn run_profile_on(sizes: &[u32], baseline: Option<&str>) -> ProfileOutcome {
    let mut points = Vec::new();
    for &n in sizes {
        let g = fig10_graph(n);
        let mut expect: Option<u64> = None;
        for (label, method) in METHODS {
            let r = Analysis::new(&g)
                .method(method)
                .telemetry(Level::Off)
                .run()
                .expect("profile run");
            assert_eq!(
                *expect.get_or_insert(r.count),
                r.count,
                "{label} at n={n}: executors disagree on the count"
            );
            points.push(profile_point(label, n, &r));
        }
        let r = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .fleet(FleetSpec::parse("2xC1060").expect("fleet spec"))
            .telemetry(Level::Off)
            .run()
            .expect("fleet profile run");
        assert_eq!(
            expect,
            Some(r.count),
            "fleet at n={n}: count diverged from the single-device executors"
        );
        points.push(profile_point("fleet-2xC1060", n, &r));
    }
    let points = Json::Array(points);
    let regression = baseline.and_then(|p| check_baseline(p, &points));
    let mut report = Json::object();
    report.set(
        "schema_version",
        Json::UInt(u64::from(PROFILE_SCHEMA_VERSION)),
    );
    report.set("bench_meta", crate::meta::bench_meta());
    report.set("suite", Json::Str("fig10".to_string()));
    report.set("points", points);
    ProfileOutcome { report, regression }
}

/// Compares the rendered points against the committed baseline byte for
/// byte; writes the baseline when the file is absent. Only `"points"` is
/// compared — the surrounding `bench_meta` (git rev!) legitimately
/// differs between commits.
fn check_baseline(path: &str, points: &Json) -> Option<String> {
    if std::env::var("TRIGON_PROFILE_SKIP_REGRESSION").is_ok() {
        println!("  [baseline check skipped via TRIGON_PROFILE_SKIP_REGRESSION]");
        return None;
    }
    let rendered = points.to_string_pretty();
    let Ok(text) = std::fs::read_to_string(path) else {
        let mut b = Json::object();
        b.set(
            "schema_version",
            Json::UInt(u64::from(PROFILE_SCHEMA_VERSION)),
        );
        b.set("points", points.clone());
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, b.to_string_pretty()).expect("write baseline");
        println!("  [no baseline at {path}; wrote one — commit it]");
        return None;
    };
    let base = Json::parse(&text).expect("baseline parses");
    let base_rendered = base
        .get("points")
        .map(Json::to_string_pretty)
        .unwrap_or_default();
    if base_rendered == rendered {
        println!("  baseline check: every counter matches {path} exactly");
        None
    } else {
        Some(format!(
            "profile counter regression: this run diverges from {path} (counters must match \
             exactly; bless an intended cost-model change by deleting the baseline and \
             re-running) — first difference: {}",
            first_diff(&base_rendered, &rendered)
        ))
    }
}

/// The first differing line pair, for the failure message.
fn first_diff(a: &str, b: &str) -> String {
    for (la, lb) in a.lines().zip(b.lines()) {
        if la != lb {
            return format!("baseline `{}` vs current `{}`", la.trim(), lb.trim());
        }
    }
    format!(
        "line counts differ ({} vs {})",
        a.lines().count(),
        b.lines().count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_covers_every_executor() {
        let a = run_profile_on(&[200], None);
        let b = run_profile_on(&[200], None);
        assert_eq!(
            a.report.get("points").unwrap().to_string_pretty(),
            b.report.get("points").unwrap().to_string_pretty(),
            "the counter sweep must be bit-reproducible"
        );
        let Some(Json::Array(points)) = a.report.get("points") else {
            panic!("points missing")
        };
        assert_eq!(points.len(), METHODS.len() + 1);
        for p in points {
            let prof = p.get("profile").expect("profile section");
            assert!(
                prof.get("counters").is_some(),
                "every point must carry counter totals"
            );
        }
        assert!(a.report.get("bench_meta").is_some());
    }

    #[test]
    fn exact_gate_roundtrips_and_catches_a_single_counter_change() {
        let dir = std::env::temp_dir().join("trigon_profile_baseline_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("baseline.json");
        let p = path.to_str().unwrap();
        let mut points = Json::object();
        points.set("transactions", Json::UInt(806_854));
        let points = Json::Array(vec![points]);
        // First call writes the baseline; identical points then pass.
        assert!(check_baseline(p, &points).is_none());
        assert!(path.exists());
        assert!(check_baseline(p, &points).is_none());
        // One transaction off: exact gate fails.
        let mut tampered = Json::object();
        tampered.set("transactions", Json::UInt(806_855));
        let tampered = Json::Array(vec![tampered]);
        let msg = check_baseline(p, &tampered).expect("one-counter drift must fail");
        assert!(msg.contains("806854") && msg.contains("806855"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
