//! Criterion bench: the structural pipeline stages — BFS/ALS
//! construction, Algorithm 1 splitting, hybrid classification — plus the
//! graph generators feeding them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trigon_core::als::build_als;
use trigon_core::hybrid::{run_hybrid_collected, HybridConfig};
use trigon_core::split::{split_graph, SplitConfig};
use trigon_core::Collector;
use trigon_gpu_sim::DeviceSpec;
use trigon_graph::gen;

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("gnp_5000_deg16", |b| {
        b.iter(|| black_box(gen::gnp(5000, 16.0 / 5000.0, 1).m()));
    });
    group.bench_function("ba_5000_m8", |b| {
        b.iter(|| black_box(gen::barabasi_albert(5000, 8, 1).m()));
    });
    group.bench_function("ws_5000_k8", |b| {
        b.iter(|| black_box(gen::watts_strogatz(5000, 8, 0.1, 1).m()));
    });
    group.bench_function("community_ring_5000", |b| {
        b.iter(|| black_box(gen::community_ring(5000, 250, 0.3, 4, 1).m()));
    });
    group.bench_function("rmat_4096", |b| {
        b.iter(|| black_box(gen::rmat_social(4096, 40_000, 1).m()));
    });
    group.finish();
}

fn structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("structure");
    group.sample_size(10);
    for n in [2_000u32, 10_000] {
        let g = gen::community_ring(n, 250, 0.3, 4, 42);
        group.bench_with_input(BenchmarkId::new("build_als", n), &g, |b, g| {
            b.iter(|| black_box(build_als(g).len()));
        });
        let cfg = SplitConfig::for_device(&DeviceSpec::c1060());
        group.bench_with_input(BenchmarkId::new("split_graph", n), &g, |b, g| {
            b.iter(|| black_box(split_graph(g, &cfg).chunks.len()));
        });
    }
    group.finish();
}

fn hybrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid");
    group.sample_size(10);
    let g = gen::community_ring(3_000, 150, 0.25, 3, 42);
    let cfg = HybridConfig::new(DeviceSpec::c1060());
    group.bench_function("run_hybrid_3000", |b| {
        b.iter(|| black_box(run_hybrid_collected(&g, &cfg, &mut Collector::disabled()).triangles));
    });
    group.finish();
}

criterion_group!(benches, generators, structure, hybrid);
criterion_main!(benches);
