//! Criterion bench: combination generation — the §VIII machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trigon_combin::{
    binom, equal_division, next_combination, rank, unrank, CrossMode, TwoLevelSpace,
};

fn successor_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("successor");
    for n in [100u32, 1000] {
        group.bench_with_input(BenchmarkId::new("walk_100k", n), &n, |b, &n| {
            b.iter(|| {
                let mut comb = vec![0u32, 1, 2];
                let mut steps = 0u64;
                while steps < 100_000 && next_combination(&mut comb, n) {
                    steps += 1;
                }
                black_box(steps)
            });
        });
    }
    group.finish();
}

fn unranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("combinadics");
    for n in [1_000u32, 100_000] {
        let total = binom(u64::from(n), 3);
        group.bench_with_input(BenchmarkId::new("unrank_mid", n), &n, |b, &n| {
            b.iter(|| black_box(unrank(total / 2, n, 3)));
        });
        let mid = unrank(total / 2, n, 3);
        group.bench_with_input(BenchmarkId::new("rank_mid", n), &n, |b, &n| {
            b.iter(|| black_box(rank(&mid, n)));
        });
    }
    group.finish();
}

fn cross_space_cursor(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_space");
    let s = TwoLevelSpace::new(200, 800, 3);
    group.bench_function("mixed_walk_100k", |b| {
        b.iter(|| {
            let mut cur = s.cursor(CrossMode::Mixed);
            let mut steps = 0u64;
            while steps < 100_000 && cur.advance() {
                steps += 1;
            }
            black_box(steps)
        });
    });
    group.bench_function("cursor_at_random_access", |b| {
        let total = s.count(CrossMode::Mixed);
        let mut i = 0u128;
        b.iter(|| {
            i = (i * 6364136223846793005 + 1442695040888963407) % total;
            black_box(s.cursor_at(CrossMode::Mixed, i).current().map(<[u32]>::len))
        });
    });
    group.finish();
}

fn work_division(c: &mut Criterion) {
    c.bench_function("equal_division_30720_threads", |b| {
        let total = binom(100_000, 3);
        b.iter(|| black_box(equal_division(total, 30_720).len()));
    });
}

criterion_group!(
    benches,
    successor_throughput,
    unranking,
    cross_space_cursor,
    work_division
);
criterion_main!(benches);
