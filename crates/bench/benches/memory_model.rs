//! Criterion bench: the GPU memory-model primitives — coalescing, bank
//! conflicts, partition accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trigon_gpu_sim::coalesce::{nonsequential_pattern, sequential_pattern};
use trigon_gpu_sim::{
    bank_conflict_degree, camping_cycles, warp_transactions, ComputeCapability, DeviceSpec,
    PartitionTraffic,
};

fn coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalesce");
    let seq = sequential_pattern(0, 32, 4);
    let non = nonsequential_pattern(0, 32, 4);
    for cc in [
        ComputeCapability::Cc10,
        ComputeCapability::Cc13,
        ComputeCapability::Cc20,
    ] {
        group.bench_with_input(
            BenchmarkId::new("sequential", cc.as_str()),
            &cc,
            |b, &cc| {
                b.iter(|| black_box(warp_transactions(cc, &seq, 4).transactions));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("nonsequential", cc.as_str()),
            &cc,
            |b, &cc| {
                b.iter(|| black_box(warp_transactions(cc, &non, 4).transactions));
            },
        );
    }
    group.finish();
}

fn bank_conflicts(c: &mut Criterion) {
    let strided: Vec<u64> = (0..16).map(|i| i * 64).collect();
    c.bench_function("bank_conflict_degree_16", |b| {
        b.iter(|| black_box(bank_conflict_degree(&strided, 16)));
    });
}

fn partition_accounting(c: &mut Criterion) {
    let spec = DeviceSpec::c1060();
    c.bench_function("camping_1000_records", |b| {
        b.iter(|| {
            let mut t = PartitionTraffic::new(&spec);
            for i in 0..1000u64 {
                t.record(i * 131);
            }
            black_box(camping_cycles(&t, &spec))
        });
    });
}

criterion_group!(benches, coalescing, bank_conflicts, partition_accounting);
criterion_main!(benches);
