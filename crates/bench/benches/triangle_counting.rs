//! Criterion bench: the triangle-counting implementations (real Rust
//! wall time, complementing the modeled seconds of the `repro` harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trigon_bench::{fig10_graph, fig11_graph};
use trigon_core::count;
use trigon_core::gpu_exec::{self, GpuConfig};
use trigon_gpu_sim::DeviceSpec;
use trigon_graph::triangles;

fn cpu_reference_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_reference");
    group.sample_size(10);
    for n in [400u32, 800] {
        let g = fig10_graph(n);
        let bm = g.to_bitmatrix();
        group.bench_with_input(BenchmarkId::new("matrix", n), &n, |b, _| {
            b.iter(|| black_box(triangles::count_matrix(&bm)));
        });
        group.bench_with_input(BenchmarkId::new("edge_iterator", n), &n, |b, _| {
            b.iter(|| black_box(triangles::count_edge_iterator(&g)));
        });
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| black_box(triangles::count_forward(&g)));
        });
    }
    group.finish();
}

fn algorithm2_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2");
    group.sample_size(10);
    let g = fig10_graph(400);
    group.bench_function("cpu_exhaustive_n400", |b| {
        b.iter(|| black_box(count::cpu_exhaustive(&g).triangles));
    });
    group.bench_function("als_fast_n400", |b| {
        b.iter(|| black_box(count::als_fast(&g)));
    });
    let big = fig11_graph(10_000);
    group.bench_function("als_fast_n10000", |b| {
        b.iter(|| black_box(count::als_fast(&big)));
    });
    group.finish();
}

fn simulated_gpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_sim");
    group.sample_size(10);
    let g = fig10_graph(400);
    group.bench_function("exhaustive_naive_n400", |b| {
        b.iter(|| {
            black_box(
                gpu_exec::run(&g, &GpuConfig::naive(DeviceSpec::c1060()))
                    .unwrap()
                    .triangles,
            )
        });
    });
    group.bench_function("exhaustive_optimized_n400", |b| {
        b.iter(|| {
            black_box(
                gpu_exec::run(&g, &GpuConfig::optimized(DeviceSpec::c1060()))
                    .unwrap()
                    .triangles,
            )
        });
    });
    let big = fig11_graph(10_000);
    group.bench_function("sampled_optimized_n10000", |b| {
        b.iter(|| {
            black_box(
                gpu_exec::run(&big, &GpuConfig::optimized(DeviceSpec::c1060()).sampled())
                    .unwrap()
                    .triangles,
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    cpu_reference_algorithms,
    algorithm2_paths,
    simulated_gpu
);
criterion_main!(benches);
