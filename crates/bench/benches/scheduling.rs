//! Criterion bench: makespan scheduling policies (§VI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trigon_sched::{exact, list_schedule, lpt, round_robin};

fn jobs(n: usize) -> Vec<u64> {
    // Deterministic LCG workload.
    let mut state = 0x1234_5678u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 1000 + 1
        })
        .collect()
}

fn heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristics");
    for n in [100usize, 10_000] {
        let js = jobs(n);
        group.bench_with_input(BenchmarkId::new("round_robin", n), &js, |b, js| {
            b.iter(|| black_box(round_robin(js, 30).makespan()));
        });
        group.bench_with_input(BenchmarkId::new("list", n), &js, |b, js| {
            b.iter(|| black_box(list_schedule(js, 30).makespan()));
        });
        group.bench_with_input(BenchmarkId::new("lpt", n), &js, |b, js| {
            b.iter(|| black_box(lpt(js, 30).makespan()));
        });
    }
    group.finish();
}

fn exact_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    for n in [10usize, 14] {
        let js = jobs(n);
        group.bench_with_input(BenchmarkId::new("branch_and_bound", n), &js, |b, js| {
            b.iter(|| black_box(exact(js, 4).makespan()));
        });
    }
    group.finish();
}

criterion_group!(benches, heuristics, exact_small);
criterion_main!(benches);
