//! The wire protocol `trigon serve` speaks and `trigon query` drives.
//!
//! Two framings carry the same JSON messages:
//!
//! * **Framed** (default for sockets) — each message is a 4-byte
//!   big-endian length prefix followed by that many bytes of compact
//!   JSON. Self-delimiting, safe for pretty-printed payloads.
//! * **NDJSON** (`--ndjson`, default for stdio) — one compact JSON
//!   document per line. Pipe-friendly: a shell heredoc of ops is a
//!   valid session, which is how the CI smoke stage drives the daemon.
//!
//! Requests are objects with an `"op"` discriminator; responses always
//! carry `"ok"`. A failed op reports `{"ok": false, "code": C,
//! "error": MSG}` where `C` is the [`Error::exit_code`] the `trigon
//! query` client exits with — so the daemon's error taxonomy (2 bad
//! config / unloaded graph, 3 I/O, 4 malformed dataset, 5 graph too
//! large) is exactly the one-shot CLI's.

use std::io::{BufRead, Write};

use trigon_core::Error;
use trigon_telemetry::Json;

/// Upper bound on a single frame; anything larger is a protocol error
/// (a desynchronized peer reads garbage lengths).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Message framing: length-prefixed or line-delimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// 4-byte big-endian length + compact JSON.
    Framed,
    /// One compact JSON document per line.
    Ndjson,
}

impl Wire {
    /// Reads the next message; `Ok(None)` at clean end-of-stream.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] for transport failures, [`Error::Parse`] for
    /// payloads that are not JSON or frames beyond [`MAX_FRAME_BYTES`].
    pub fn read_msg<R: BufRead>(&self, r: &mut R) -> Result<Option<Json>, Error> {
        let text = match self {
            Wire::Framed => {
                let mut len = [0u8; 4];
                match r.read_exact(&mut len) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
                    Err(e) => return Err(wire_io(e)),
                }
                let len = u32::from_be_bytes(len);
                if len > MAX_FRAME_BYTES {
                    return Err(Error::Parse(format!(
                        "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
                    )));
                }
                let mut buf = vec![0u8; len as usize];
                r.read_exact(&mut buf).map_err(wire_io)?;
                String::from_utf8(buf)
                    .map_err(|e| Error::Parse(format!("frame is not UTF-8: {e}")))?
            }
            Wire::Ndjson => loop {
                let mut line = String::new();
                if r.read_line(&mut line).map_err(wire_io)? == 0 {
                    return Ok(None);
                }
                if !line.trim().is_empty() {
                    break line;
                }
            },
        };
        let t = text.trim();
        Json::parse(t)
            .map(Some)
            .map_err(|e| Error::Parse(format!("bad message {t:?}: {e}")))
    }

    /// Writes one message and flushes.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] for transport failures.
    pub fn write_msg<W: Write>(&self, w: &mut W, msg: &Json) -> Result<(), Error> {
        let text = msg.to_string_compact();
        match self {
            Wire::Framed => {
                let bytes = text.as_bytes();
                let len = u32::try_from(bytes.len()).map_err(|_| {
                    Error::Parse("message exceeds the 4 GiB frame space".to_string())
                })?;
                w.write_all(&len.to_be_bytes()).map_err(wire_io)?;
                w.write_all(bytes).map_err(wire_io)?;
            }
            Wire::Ndjson => {
                w.write_all(text.as_bytes()).map_err(wire_io)?;
                w.write_all(b"\n").map_err(wire_io)?;
            }
        }
        w.flush().map_err(wire_io)
    }
}

fn wire_io(e: std::io::Error) -> Error {
    Error::Io {
        path: "<wire>".to_string(),
        source: e,
    }
}

/// Where a `load` op gets its graph.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadSource {
    /// Read a dataset file on the *server's* filesystem.
    Path {
        /// File path.
        path: String,
        /// CLI format name (`auto`, `edges`, `mm`, …).
        format: String,
    },
    /// Generate one of the CLI's named models.
    Gen {
        /// Model name (`gnp`, `rmat`, `ring`, …).
        model: String,
        /// Vertex count.
        n: u32,
        /// Generator seed.
        seed: u64,
    },
}

/// One workload of a query batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryItem {
    /// Workload name (`triangles`, `clustering`, `ktruss`, …).
    pub workload: String,
    /// `k` for the parameterized workloads.
    pub k: Option<u32>,
    /// Method name (`gpu-opt`, `cpu-fast`, …).
    pub method: String,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a graph under a name.
    Load {
        /// Registry name.
        name: String,
        /// Dataset file or generator spec.
        source: LoadSource,
    },
    /// List loaded graphs and their cache footprints.
    List,
    /// Drop a graph and everything cached for it.
    Evict {
        /// Registry name.
        name: String,
    },
    /// Run a batch of workloads over one registered graph.
    Query {
        /// Registry name of the target graph.
        graph: String,
        /// The batch; a single-workload query is a batch of one.
        items: Vec<QueryItem>,
    },
    /// Server statistics (cache and admission counters).
    Report,
    /// Stop the daemon after responding.
    Shutdown,
}

/// Parses a request message.
///
/// # Errors
///
/// [`Error::BadConfig`] for an unknown op, missing or ill-typed
/// fields, or a registry name containing the reserved `|` separator.
pub fn parse_request(msg: &Json) -> Result<Request, Error> {
    let op = str_field(msg, "op")?;
    match op.as_str() {
        "load" => {
            let name = name_field(msg)?;
            let source = if let Some(path) = opt_str(msg, "path")? {
                LoadSource::Path {
                    path,
                    format: opt_str(msg, "format")?.unwrap_or_else(|| "auto".to_string()),
                }
            } else if let Some(model) = opt_str(msg, "gen")? {
                LoadSource::Gen {
                    model,
                    n: u32_field(msg, "n")?,
                    seed: opt_u64(msg, "seed")?.unwrap_or(42),
                }
            } else {
                return Err(Error::bad_config(
                    "load needs \"path\" (a dataset file) or \"gen\" (a model name)",
                ));
            };
            Ok(Request::Load { name, source })
        }
        "list" => Ok(Request::List),
        "evict" => Ok(Request::Evict {
            name: name_field(msg)?,
        }),
        "query" => {
            let graph = str_field(msg, "graph")?;
            let items = match msg.get("batch") {
                Some(Json::Array(entries)) => {
                    if entries.is_empty() {
                        return Err(Error::bad_config("query batch is empty"));
                    }
                    entries.iter().map(query_item).collect::<Result<_, _>>()?
                }
                Some(other) => {
                    return Err(Error::bad_config(format!(
                        "query \"batch\" must be an array, got {}",
                        other.to_string_compact()
                    )));
                }
                None => vec![query_item(msg)?],
            };
            Ok(Request::Query { graph, items })
        }
        "report" => Ok(Request::Report),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(Error::bad_config(format!(
            "unknown op {other:?} (expected load|list|evict|query|report|shutdown)"
        ))),
    }
}

fn query_item(msg: &Json) -> Result<QueryItem, Error> {
    Ok(QueryItem {
        workload: opt_str(msg, "workload")?.unwrap_or_else(|| "triangles".to_string()),
        k: opt_u64(msg, "k")?
            .map(|k| u32::try_from(k).map_err(|_| Error::bad_config(format!("k {k} out of range"))))
            .transpose()?,
        method: opt_str(msg, "method")?.unwrap_or_else(|| "gpu-opt".to_string()),
    })
}

fn name_field(msg: &Json) -> Result<String, Error> {
    let name = str_field(msg, "name")?;
    if name.is_empty() || name.contains('|') {
        return Err(Error::bad_config(format!(
            "graph name {name:?} must be non-empty and free of '|'"
        )));
    }
    Ok(name)
}

fn str_field(msg: &Json, key: &str) -> Result<String, Error> {
    match msg.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(other) => Err(Error::bad_config(format!(
            "field {key:?} must be a string, got {}",
            other.to_string_compact()
        ))),
        None => Err(Error::bad_config(format!("missing field {key:?}"))),
    }
}

fn opt_str(msg: &Json, key: &str) -> Result<Option<String>, Error> {
    match msg.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(Error::bad_config(format!(
            "field {key:?} must be a string, got {}",
            other.to_string_compact()
        ))),
    }
}

fn opt_u64(msg: &Json, key: &str) -> Result<Option<u64>, Error> {
    match msg.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::UInt(v)) => Ok(Some(*v)),
        Some(Json::Int(v)) if *v >= 0 => Ok(Some(*v as u64)),
        Some(other) => Err(Error::bad_config(format!(
            "field {key:?} must be an unsigned integer, got {}",
            other.to_string_compact()
        ))),
    }
}

fn u32_field(msg: &Json, key: &str) -> Result<u32, Error> {
    let v =
        opt_u64(msg, key)?.ok_or_else(|| Error::bad_config(format!("missing field {key:?}")))?;
    u32::try_from(v).map_err(|_| Error::bad_config(format!("field {key:?} = {v} out of range")))
}

/// The error response for a failed op: the client relays `code` as its
/// exit code.
#[must_use]
pub fn err_response(e: &Error) -> Json {
    let mut o = Json::object();
    o.set("ok", Json::from(false));
    // Exit codes are small positives; emit UInt so a response compares
    // equal whether inspected in memory or after a parse round trip.
    o.set("code", Json::UInt(e.exit_code().unsigned_abs().into()));
    o.set("error", Json::from(e.to_string()));
    o
}

/// An `{"ok": true}` response shell for handlers to extend.
#[must_use]
pub fn ok_response() -> Json {
    let mut o = Json::object();
    o.set("ok", Json::from(true));
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_wires_roundtrip_messages() {
        for wire in [Wire::Framed, Wire::Ndjson] {
            let mut msg = Json::object();
            msg.set("op", Json::from("list"));
            msg.set("x", Json::from(7u64));
            let mut buf = Vec::new();
            wire.write_msg(&mut buf, &msg).unwrap();
            wire.write_msg(&mut buf, &msg).unwrap();
            let mut r = std::io::Cursor::new(buf);
            assert_eq!(wire.read_msg(&mut r).unwrap(), Some(msg.clone()));
            assert_eq!(wire.read_msg(&mut r).unwrap(), Some(msg));
            assert_eq!(wire.read_msg(&mut r).unwrap(), None, "{wire:?} EOF");
        }
    }

    #[test]
    fn ndjson_skips_blank_lines_and_framed_caps_length() {
        let mut r = std::io::Cursor::new(b"\n\n{\"op\":\"list\"}\n".to_vec());
        let msg = Wire::Ndjson.read_msg(&mut r).unwrap().unwrap();
        assert_eq!(msg.get("op"), Some(&Json::from("list")));

        let mut oversized = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        oversized.extend_from_slice(b"{}");
        let err = Wire::Framed
            .read_msg(&mut std::io::Cursor::new(oversized))
            .unwrap_err();
        assert!(matches!(err, Error::Parse(_)), "{err}");
    }

    #[test]
    fn parses_the_op_suite() {
        let parse = |s: &str| parse_request(&Json::parse(s).unwrap());
        assert_eq!(
            parse(r#"{"op":"load","name":"g","path":"a.mtx"}"#).unwrap(),
            Request::Load {
                name: "g".into(),
                source: LoadSource::Path {
                    path: "a.mtx".into(),
                    format: "auto".into()
                }
            }
        );
        assert_eq!(
            parse(r#"{"op":"load","name":"g","gen":"rmat","n":1024,"seed":7}"#).unwrap(),
            Request::Load {
                name: "g".into(),
                source: LoadSource::Gen {
                    model: "rmat".into(),
                    n: 1024,
                    seed: 7
                }
            }
        );
        assert_eq!(parse(r#"{"op":"list"}"#).unwrap(), Request::List);
        assert_eq!(
            parse(r#"{"op":"evict","name":"g"}"#).unwrap(),
            Request::Evict { name: "g".into() }
        );
        match parse(r#"{"op":"query","graph":"g","workload":"ktruss","k":5,"method":"cpu-fast"}"#)
            .unwrap()
        {
            Request::Query { graph, items } => {
                assert_eq!(graph, "g");
                assert_eq!(
                    items,
                    vec![QueryItem {
                        workload: "ktruss".into(),
                        k: Some(5),
                        method: "cpu-fast".into()
                    }]
                );
            }
            other => panic!("wrong request {other:?}"),
        }
        match parse(
            r#"{"op":"query","graph":"g","batch":[{"workload":"triangles"},{"workload":"clustering","method":"cpu-fast"}]}"#,
        )
        .unwrap()
        {
            Request::Query { items, .. } => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].method, "gpu-opt", "defaults apply per item");
            }
            other => panic!("wrong request {other:?}"),
        }
        assert_eq!(parse(r#"{"op":"report"}"#).unwrap(), Request::Report);
        assert_eq!(parse(r#"{"op":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_bad_requests() {
        let parse = |s: &str| parse_request(&Json::parse(s).unwrap());
        for bad in [
            r#"{"op":"warp"}"#,
            r#"{"no_op":1}"#,
            r#"{"op":"load","name":"g"}"#,
            r#"{"op":"load","name":"a|b","path":"x"}"#,
            r#"{"op":"load","name":"g","gen":"rmat"}"#,
            r#"{"op":"query"}"#,
            r#"{"op":"query","graph":"g","batch":[]}"#,
            r#"{"op":"query","graph":"g","k":"three"}"#,
        ] {
            assert!(matches!(parse(bad), Err(Error::BadConfig(_))), "{bad}");
        }
    }

    #[test]
    fn error_response_carries_the_exit_code() {
        let e = Error::Parse("x".into());
        let r = err_response(&e);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(r.get("code"), Some(&Json::UInt(4)));
    }
}
