//! The serving daemon: dispatches protocol requests against the
//! registry under the admission policy and bounded queue.
//!
//! [`Server::handle`] is the transport-free core — one request message
//! in, one response out — used directly by in-process tests. The
//! transport layers wrap it: [`Server::serve`] pumps one duplex stream
//! (stdio, a pipe, one accepted socket), [`Server::serve_tcp`] /
//! [`Server::serve_unix`] accept concurrent connections, each on its
//! own thread over the shared registry, so independent clients hit the
//! same warm caches.
//!
//! Every query response embeds the schema-v8 `serving` section: the
//! Eqs. 1–2 admission verdict and target, result/artifact cache
//! outcomes, measured queue wait, and the batch's amortized share of
//! the simulated H2D upload.

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::admission::{Policy, Queue, Verdict};
use crate::protocol::{
    err_response, ok_response, parse_request, LoadSource, QueryItem, Request, Wire,
};
use crate::registry::{generate, result_key, Registry};
use trigon_core::report::ServingSection;
use trigon_core::{Error, Level, Method, Run, Workload};
use trigon_fleet::FleetSpec;
use trigon_gpu_sim::DeviceSpec;
use trigon_graph::io::{read_dataset, DatasetFormat, IoError};
use trigon_graph::Graph;
use trigon_telemetry::Json;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Primary device queries are admitted to.
    pub device: DeviceSpec,
    /// Overflow fleet for graphs the device cannot hold.
    pub fleet: Option<FleetSpec>,
    /// Concurrent query executions.
    pub slots: usize,
    /// Bounded wait line beyond the slots; overflow is refused.
    pub depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            device: DeviceSpec::c1060(),
            fleet: None,
            slots: 8,
            depth: 16,
        }
    }
}

/// Admission counters the `report` op exposes.
#[derive(Debug, Clone, Copy, Default)]
struct AdmitStats {
    queries: u64,
    admitted: u64,
    routed: u64,
    rejected: u64,
    busy: u64,
}

/// The daemon. All state is internally synchronized; wrap in an [`Arc`]
/// to share across connection threads.
pub struct Server {
    registry: Registry,
    policy: Policy,
    queue: Queue,
    admit_stats: Mutex<AdmitStats>,
    stop: AtomicBool,
}

impl Server {
    /// A server over an empty registry.
    #[must_use]
    pub fn new(cfg: ServerConfig) -> Self {
        Self {
            registry: Registry::new(),
            policy: Policy {
                device: cfg.device,
                fleet: cfg.fleet,
            },
            queue: Queue::new(cfg.slots, cfg.depth),
            admit_stats: Mutex::new(AdmitStats::default()),
            stop: AtomicBool::new(false),
        }
    }

    /// The underlying registry (tests preload graphs through it).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Handles one request message. Returns the response and whether
    /// this was an (accepted) shutdown.
    pub fn handle(&self, msg: &Json) -> (Json, bool) {
        let req = match parse_request(msg) {
            Ok(req) => req,
            Err(e) => return (err_response(&e), false),
        };
        let shutdown = matches!(req, Request::Shutdown);
        match self.dispatch(req) {
            Ok(resp) => (resp, shutdown),
            Err(e) => (err_response(&e), false),
        }
    }

    fn dispatch(&self, req: Request) -> Result<Json, Error> {
        match req {
            Request::Load { name, source } => self.do_load(&name, &source),
            Request::List => {
                let mut resp = ok_response();
                resp.set(
                    "graphs",
                    Json::Array(
                        self.registry
                            .list()
                            .into_iter()
                            .map(|g| {
                                let mut o = Json::object();
                                o.set("name", Json::from(g.name));
                                o.set("n", Json::from(u64::from(g.n)));
                                o.set("m", Json::from(g.m));
                                o.set("source", Json::from(g.source));
                                o.set("artifacts", Json::from(g.artifact_entries));
                                o.set("results", Json::from(g.result_entries));
                                o
                            })
                            .collect(),
                    ),
                );
                Ok(resp)
            }
            Request::Evict { name } => {
                self.registry.evict(&name)?;
                let mut resp = ok_response();
                resp.set("evicted", Json::from(name));
                Ok(resp)
            }
            Request::Query { graph, items } => self.do_query(&graph, &items),
            Request::Report => Ok(self.do_report()),
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                let mut resp = ok_response();
                resp.set("shutdown", Json::from(true));
                Ok(resp)
            }
        }
    }

    fn do_load(&self, name: &str, source: &LoadSource) -> Result<Json, Error> {
        let (graph, provenance) = match source {
            LoadSource::Path { path, format } => {
                let format = DatasetFormat::parse(format).ok_or_else(|| {
                    Error::bad_config(format!(
                        "unknown dataset format {format:?} (expected auto|edges|mm)"
                    ))
                })?;
                let file = std::fs::File::open(path).map_err(|e| Error::Io {
                    path: path.clone(),
                    source: e,
                })?;
                let (g, _) = read_dataset(BufReader::new(file), format)
                    .map_err(|e| dataset_error(path, e))?;
                (g, format!("file:{path}"))
            }
            LoadSource::Gen { model, n, seed } => {
                let g = generate(model, *n, *seed)
                    .ok_or_else(|| Error::bad_config(format!("unknown model {model:?}")))?;
                (g, format!("gen:{model}/n={n}/seed={seed}"))
            }
        };
        let (n, m) = self.registry.load(name, graph, provenance.clone())?;
        let mut resp = ok_response();
        resp.set("name", Json::from(name));
        resp.set("n", Json::from(u64::from(n)));
        resp.set("m", Json::from(m));
        resp.set("source", Json::from(provenance));
        Ok(resp)
    }

    fn do_query(&self, graph_name: &str, items: &[QueryItem]) -> Result<Json, Error> {
        let permit = self.queue.acquire().inspect_err(|_| {
            self.admit_stats.lock().unwrap().busy += 1;
        })?;
        let g = self.registry.get(graph_name)?;
        let batch_size = items.len() as u64;
        let mut reports = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            reports.push(self.run_item(
                graph_name,
                &g,
                item,
                batch_size,
                i as u64,
                permit.wait_s,
            )?);
        }
        drop(permit);
        let mut resp = ok_response();
        resp.set("graph", Json::from(graph_name));
        resp.set("reports", Json::Array(reports));
        Ok(resp)
    }

    /// Runs (or replays) one workload of a batch and attaches its
    /// serving section.
    fn run_item(
        &self,
        graph_name: &str,
        g: &Graph,
        item: &QueryItem,
        batch_size: u64,
        batch_index: u64,
        queue_wait_s: f64,
    ) -> Result<Json, Error> {
        let method = Method::parse(&item.method)?;
        let workload = Workload::parse(&item.workload, item.k)?;
        {
            self.admit_stats.lock().unwrap().queries += 1;
        }
        let verdict = self.policy.admit(g.n(), method.uses_device());
        {
            let mut st = self.admit_stats.lock().unwrap();
            match &verdict {
                Ok((Verdict::Admit, _)) => st.admitted += 1,
                Ok((Verdict::Route, _)) => st.routed += 1,
                Err(_) => st.rejected += 1,
            }
        }
        let (verdict, target) = verdict?;
        let k = match workload {
            Workload::KCliques(k) | Workload::KTruss(k) => k,
            _ => 3,
        };
        let key = result_key(graph_name, &target, method.label(), workload.label(), k);
        let (mut report, cache, artifacts) = match self.registry.result(&key) {
            Some(json) => (json, "hit", "hit"),
            None => {
                let reuse = reuses_artifacts(method, workload);
                let (als, warm) = if reuse {
                    let (als, warm) =
                        self.registry
                            .artifacts(graph_name, g, &target, method.label());
                    (Some(als), warm)
                } else {
                    (None, false)
                };
                let mut run = Run::new(g)
                    .method(method)
                    .workload(workload)
                    .telemetry(Level::Standard);
                match verdict {
                    Verdict::Admit => run = run.device(self.policy.device.clone()),
                    Verdict::Route => {
                        run = run.fleet(self.policy.fleet.clone().expect("route needs a fleet"));
                    }
                }
                if let Some(als) = als {
                    run = run.prebuilt_als(als);
                }
                let json = run.execute()?.to_json();
                self.registry.put_result(&key, json.clone());
                (json, "miss", if warm { "hit" } else { "miss" })
            }
        };
        let transfer_s = report
            .get("gpu")
            .and_then(|gpu| gpu.get("transfer_s"))
            .and_then(json_f64)
            .unwrap_or(0.0);
        let section = ServingSection {
            graph: graph_name.to_string(),
            verdict: verdict.label().to_string(),
            target,
            cache: cache.to_string(),
            artifacts: artifacts.to_string(),
            queue_wait_s,
            batch_size,
            batch_index,
            h2d_share_s: transfer_s / batch_size as f64,
        };
        report.set("serving", section.to_json());
        Ok(report)
    }

    fn do_report(&self) -> Json {
        let cache = self.registry.stats();
        let admit = *self.admit_stats.lock().unwrap();
        let mut stats = Json::object();
        stats.set("graphs", Json::from(self.registry.list().len()));
        stats.set("queries", Json::from(admit.queries));
        stats.set("admitted", Json::from(admit.admitted));
        stats.set("routed", Json::from(admit.routed));
        stats.set("rejected", Json::from(admit.rejected));
        stats.set("busy", Json::from(admit.busy));
        stats.set("result_hits", Json::from(cache.result_hits));
        stats.set("result_misses", Json::from(cache.result_misses));
        stats.set("artifact_hits", Json::from(cache.artifact_hits));
        stats.set("artifact_misses", Json::from(cache.artifact_misses));
        stats.set("evictions", Json::from(cache.evictions));
        stats.set("max_admissible_n", Json::from(self.policy.max_n()));
        let mut resp = ok_response();
        resp.set("stats", stats);
        resp
    }

    /// Pumps one duplex stream until end-of-stream or shutdown; returns
    /// whether shutdown was requested. A malformed message gets an
    /// error response (code 4) and the stream continues — only
    /// transport failures abort it.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the transport fails mid-stream.
    pub fn serve<R: BufRead, W: Write>(
        &self,
        r: &mut R,
        w: &mut W,
        wire: Wire,
    ) -> Result<bool, Error> {
        loop {
            let msg = match wire.read_msg(r) {
                Ok(None) => return Ok(false),
                Ok(Some(msg)) => msg,
                Err(e @ Error::Parse(_)) => {
                    wire.write_msg(w, &err_response(&e))?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let (resp, shutdown) = self.handle(&msg);
            wire.write_msg(w, &resp)?;
            if shutdown {
                return Ok(true);
            }
        }
    }

    /// Accepts TCP connections until a client sends `shutdown`; each
    /// connection runs on its own thread over the shared state.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn serve_tcp(
        self: &Arc<Self>,
        listener: std::net::TcpListener,
        wire: Wire,
    ) -> std::io::Result<()> {
        let addr = listener.local_addr()?;
        for conn in listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let mut r = BufReader::new(read_half);
                let mut w = stream;
                if let Ok(true) = server.serve(&mut r, &mut w, wire) {
                    // Unblock the accept loop so it can observe stop.
                    let _ = std::net::TcpStream::connect(addr);
                }
            });
        }
        Ok(())
    }

    /// Accepts Unix-socket connections until a client sends `shutdown`.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    #[cfg(unix)]
    pub fn serve_unix(
        self: &Arc<Self>,
        listener: std::os::unix::net::UnixListener,
        path: &str,
        wire: Wire,
    ) -> std::io::Result<()> {
        let path = path.to_string();
        for conn in listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let server = Arc::clone(self);
            let wake = path.clone();
            std::thread::spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let mut r = BufReader::new(read_half);
                let mut w = stream;
                if let Ok(true) = server.serve(&mut r, &mut w, wire) {
                    let _ = std::os::unix::net::UnixStream::connect(&wake);
                }
            });
        }
        Ok(())
    }
}

/// Whether the executor for this (method, workload) accepts prebuilt
/// ALS artifacts. The hybrid and k-clique paths build their own
/// decomposition, so caching for them would store dead weight.
fn reuses_artifacts(method: Method, workload: Workload) -> bool {
    !matches!(method, Method::Hybrid | Method::KCliques(_))
        && !matches!(workload, Workload::KCliques(_))
}

fn dataset_error(path: &str, e: IoError) -> Error {
    match e {
        IoError::Io(source) => Error::Io {
            path: path.to_string(),
            source,
        },
        other => Error::Parse(format!("{path}: {other}")),
    }
}

fn json_f64(j: &Json) -> Option<f64> {
    match j {
        Json::Float(f) => Some(*f),
        Json::UInt(u) => Some(*u as f64),
        Json::Int(i) => Some(*i as f64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServerConfig::default())
    }

    fn msg(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    fn load_small(s: &Server, name: &str) {
        let (resp, _) = s.handle(&msg(&format!(
            r#"{{"op":"load","name":"{name}","gen":"gnp","n":120,"seed":3}}"#
        )));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
    }

    fn one_report(resp: &Json) -> &Json {
        match resp.get("reports") {
            Some(Json::Array(r)) if r.len() == 1 => &r[0],
            other => panic!("expected one report, got {other:?}"),
        }
    }

    #[test]
    fn cold_then_warm_query_is_a_cache_hit_with_identical_report() {
        let s = server();
        load_small(&s, "g");
        let q = msg(r#"{"op":"query","graph":"g","workload":"triangles","method":"gpu-opt"}"#);
        let (r1, _) = s.handle(&q);
        let (r2, _) = s.handle(&q);
        let (a, b) = (one_report(&r1), one_report(&r2));
        let serving = |r: &Json, key: &str| r.get("serving").unwrap().get(key).cloned().unwrap();
        assert_eq!(serving(a, "cache"), Json::from("miss"));
        assert_eq!(serving(a, "artifacts"), Json::from("miss"));
        assert_eq!(serving(b, "cache"), Json::from("hit"));
        assert_eq!(serving(a, "verdict"), Json::from("admit"));
        assert_eq!(serving(a, "target"), Json::from("C1060"));
        // Identical modulo the per-request serving section.
        let strip = |r: &Json| {
            let mut r = r.clone();
            r.set("serving", Json::Null);
            r
        };
        assert_eq!(strip(a), strip(b));
    }

    #[test]
    fn artifact_cache_warms_across_workloads_and_methods() {
        let s = server();
        load_small(&s, "g");
        let art = |resp: &Json| {
            one_report(resp)
                .get("serving")
                .unwrap()
                .get("artifacts")
                .cloned()
                .unwrap()
        };
        let (r1, _) = s.handle(&msg(
            r#"{"op":"query","graph":"g","workload":"triangles","method":"gpu-opt"}"#,
        ));
        assert_eq!(art(&r1), Json::from("miss"));
        // Different workload, same (graph, device, method) key: warm.
        let (r2, _) = s.handle(&msg(
            r#"{"op":"query","graph":"g","workload":"clustering","method":"gpu-opt"}"#,
        ));
        assert_eq!(art(&r2), Json::from("hit"));
        // Different method re-keys but shares the decomposition Arc; the
        // key itself is cold, so it reports a miss without rebuilding.
        let (r3, _) = s.handle(&msg(
            r#"{"op":"query","graph":"g","workload":"triangles","method":"cpu-fast"}"#,
        ));
        assert_eq!(art(&r3), Json::from("miss"));
        let stats = s.registry().stats();
        assert_eq!(stats.artifact_hits, 1);
        assert_eq!(stats.artifact_misses, 2);
    }

    #[test]
    fn unloaded_graph_is_code_2_and_malformed_op_is_code_2() {
        let s = server();
        let (resp, _) = s.handle(&msg(r#"{"op":"query","graph":"nope"}"#));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("code"), Some(&Json::UInt(2)));
        let (resp, _) = s.handle(&msg(r#"{"op":"frobnicate"}"#));
        assert_eq!(resp.get("code"), Some(&Json::UInt(2)));
    }

    #[test]
    fn batch_amortizes_h2d_across_items() {
        let s = server();
        load_small(&s, "g");
        let (resp, _) = s.handle(&msg(r#"{"op":"query","graph":"g","batch":[
                {"workload":"triangles","method":"gpu-opt"},
                {"workload":"clustering","method":"gpu-opt"},
                {"workload":"enumerate","method":"gpu-opt"}]}"#));
        let Some(Json::Array(reports)) = resp.get("reports") else {
            panic!("expected reports, got {resp:?}");
        };
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            let sv = r.get("serving").unwrap();
            assert_eq!(sv.get("batch_size"), Some(&Json::from(3u64)));
            assert_eq!(sv.get("batch_index"), Some(&Json::from(i)));
            let transfer = json_f64(r.get("gpu").unwrap().get("transfer_s").unwrap()).unwrap();
            let share = json_f64(sv.get("h2d_share_s").unwrap()).unwrap();
            assert!(transfer > 0.0);
            assert!((share - transfer / 3.0).abs() < 1e-15);
        }
    }

    #[test]
    fn admission_rejects_oversized_graph_with_code_5() {
        let s = Server::new(ServerConfig {
            device: DeviceSpec::c2050(),
            ..ServerConfig::default()
        });
        // grid(262144) is 512x512: n = 262,144 > the C2050's S-UTM
        // capacity of 227,023, but cheap to build (no combinations run
        // — admission fires before any layout).
        let (resp, _) = s.handle(&msg(
            r#"{"op":"load","name":"big","gen":"grid","n":262144}"#,
        ));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "{resp:?}");
        let (resp, _) = s.handle(&msg(
            r#"{"op":"query","graph":"big","workload":"triangles","method":"gpu-opt"}"#,
        ));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("code"), Some(&Json::UInt(5)));
        let (resp, _) = s.handle(&msg(r#"{"op":"report"}"#));
        assert_eq!(
            resp.get("stats").unwrap().get("rejected"),
            Some(&Json::from(1u64))
        );
    }

    #[test]
    fn evict_then_requery_reconverges_to_the_same_report() {
        let s = server();
        load_small(&s, "g");
        let q = msg(r#"{"op":"query","graph":"g","workload":"ktruss","k":3,"method":"cpu-fast"}"#);
        let (r1, _) = s.handle(&q);
        let (resp, _) = s.handle(&msg(r#"{"op":"evict","name":"g"}"#));
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let (resp, _) = s.handle(&q);
        assert_eq!(resp.get("code"), Some(&Json::UInt(2)), "evicted: {resp:?}");
        load_small(&s, "g");
        let (r2, _) = s.handle(&q);
        let strip = |resp: &Json| {
            let mut r = one_report(resp).clone();
            r.set("serving", Json::Null);
            r.set("timing", Json::Null); // wall_s differs run to run
            r.set("telemetry", Json::Null); // phase wall clocks differ too
            r
        };
        assert_eq!(strip(&r1), strip(&r2));
    }

    #[test]
    fn serve_loop_speaks_ndjson_and_honors_shutdown() {
        let s = server();
        let input = concat!(
            r#"{"op":"load","name":"g","gen":"gnp","n":80,"seed":1}"#,
            "\n",
            "this is not json\n",
            r#"{"op":"query","graph":"g","workload":"triangles","method":"cpu-fast"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
            r#"{"op":"list"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let shutdown = s
            .serve(&mut input.as_bytes(), &mut out, Wire::Ndjson)
            .unwrap();
        assert!(shutdown);
        let lines: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        // load ok, parse error (code 4), query ok, shutdown ok — the
        // trailing list op is never read.
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(lines[1].get("code"), Some(&Json::UInt(4)));
        assert_eq!(lines[2].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(lines[3].get("shutdown"), Some(&Json::Bool(true)));
    }
}
