//! Capacity-gated admission (§IV, Eqs. 1–2) and the bounded request
//! queue.
//!
//! Before a query dispatches, the controller checks the paper's S-UTM
//! capacity inequality `n(n−1)/2 ≤ S` against the primary device's
//! global memory. A graph that fits is **admitted** to the device; one
//! that does not is **routed** to the fleet roster when its pooled
//! global memory holds it ([`trigon_core::table2_fleet`]); otherwise
//! the query is **rejected** with [`Error::GraphTooLarge`] (CLI exit
//! 5) before any layout or transfer is attempted.
//!
//! Separately, [`Queue`] bounds how much work the daemon takes on: a
//! fixed number of execution slots plus a bounded wait line. A request
//! that finds the line full is refused immediately ("server busy"), a
//! queued one records how long it waited — the `queue_wait_s` field of
//! the report's serving section.

use std::sync::{Condvar, Mutex};
use std::time::Instant;

use trigon_core::capacity::{fits, max_graph_sutm, StorageModel};
use trigon_core::Error;
use trigon_fleet::FleetSpec;
use trigon_gpu_sim::DeviceSpec;

/// Where an admitted query will execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The graph fits the primary device (Eq. 2); run there.
    Admit,
    /// The device rejected it but the fleet's pooled capacity holds it;
    /// run on the roster.
    Route,
}

impl Verdict {
    /// The serving-section label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Admit => "admit",
            Verdict::Route => "route",
        }
    }
}

/// The admission controller: a primary device and an optional
/// overflow fleet.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Primary device queries are admitted to.
    pub device: DeviceSpec,
    /// Overflow roster for graphs the device cannot hold.
    pub fleet: Option<FleetSpec>,
}

impl Policy {
    /// Admits, routes, or rejects an `n`-vertex graph under the S-UTM
    /// packing. CPU-only methods bypass the gate (`uses_device =
    /// false`): host memory is not the resource Eqs. 1–2 budget.
    ///
    /// Returns the verdict and the target label (device name, fleet
    /// spec, or `"cpu"`).
    ///
    /// # Errors
    ///
    /// [`Error::GraphTooLarge`] when neither the device nor the fleet
    /// can hold the graph; `needed`/`capacity` are the Eq. 2 sizes in
    /// bytes.
    pub fn admit(&self, n: u32, uses_device: bool) -> Result<(Verdict, String), Error> {
        if !uses_device {
            return Ok((Verdict::Admit, "cpu".to_string()));
        }
        let n = u64::from(n);
        if fits(n, self.device.global_mem_bits(), StorageModel::SUtm) {
            return Ok((Verdict::Admit, self.device.name.to_string()));
        }
        if let Some(fleet) = &self.fleet {
            let pooled: u128 = fleet
                .devices()
                .iter()
                .map(DeviceSpec::global_mem_bits)
                .sum();
            if fits(n, pooled, StorageModel::SUtm) {
                return Ok((Verdict::Route, fleet.to_string()));
            }
        }
        let best_bits: u128 = self.fleet.as_ref().map_or_else(
            || self.device.global_mem_bits(),
            |f| f.devices().iter().map(DeviceSpec::global_mem_bits).sum(),
        );
        Err(Error::GraphTooLarge {
            needed: bits_to_bytes(StorageModel::SUtm.size_bits(n)),
            capacity: bits_to_bytes(best_bits),
        })
    }

    /// The largest admissible `n` (Eq. 2 inverted): the fleet's pooled
    /// S-UTM capacity when a roster is configured, else the device's.
    #[must_use]
    pub fn max_n(&self) -> u64 {
        let bits: u128 = self.fleet.as_ref().map_or_else(
            || self.device.global_mem_bits(),
            |f| f.devices().iter().map(DeviceSpec::global_mem_bits).sum(),
        );
        max_graph_sutm(bits)
    }
}

fn bits_to_bytes(bits: u128) -> u64 {
    u64::try_from(bits.div_ceil(8)).unwrap_or(u64::MAX)
}

/// A bounded admission queue: `slots` requests execute concurrently,
/// up to `depth` more wait, anything beyond is refused immediately.
#[derive(Debug)]
pub struct Queue {
    slots: usize,
    depth: usize,
    state: Mutex<QueueState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct QueueState {
    running: usize,
    waiting: usize,
}

/// An execution slot held for the duration of one request; dropping it
/// frees the slot and wakes a waiter.
#[derive(Debug)]
pub struct Permit<'q> {
    queue: &'q Queue,
    /// Seconds this request spent waiting for its slot.
    pub wait_s: f64,
}

impl Queue {
    /// A queue with `slots` concurrent executions and a wait line of
    /// `depth` (both clamped to at least 1 slot / 0 depth).
    #[must_use]
    pub fn new(slots: usize, depth: usize) -> Self {
        Self {
            slots: slots.max(1),
            depth,
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
        }
    }

    /// Takes an execution slot, waiting in line if all are busy.
    ///
    /// # Errors
    ///
    /// [`Error::BadConfig`] ("server busy", CLI exit 2) when the wait
    /// line is already at depth.
    pub fn acquire(&self) -> Result<Permit<'_>, Error> {
        let started = Instant::now();
        let mut st = self.state.lock().unwrap();
        if st.running < self.slots && st.waiting == 0 {
            st.running += 1;
            return Ok(Permit {
                queue: self,
                wait_s: 0.0,
            });
        }
        if st.waiting >= self.depth {
            return Err(Error::bad_config(format!(
                "server busy: {} running, {} waiting (queue depth {})",
                st.running, st.waiting, self.depth
            )));
        }
        st.waiting += 1;
        while st.running >= self.slots {
            st = self.cv.wait(st).unwrap();
        }
        st.waiting -= 1;
        st.running += 1;
        Ok(Permit {
            queue: self,
            wait_s: started.elapsed().as_secs_f64(),
        })
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.queue.state.lock().unwrap();
        st.running -= 1;
        drop(st);
        self.queue.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(fleet: Option<&str>) -> Policy {
        Policy {
            device: DeviceSpec::c2050(),
            fleet: fleet.map(|s| FleetSpec::parse(s).unwrap()),
        }
    }

    #[test]
    fn cpu_methods_bypass_the_gate() {
        let (v, t) = policy(None).admit(u32::MAX, false).unwrap();
        assert_eq!(v, Verdict::Admit);
        assert_eq!(t, "cpu");
    }

    #[test]
    fn table2_boundaries_admit_route_reject() {
        // C2050 global S-UTM capacity is exactly 227,023 (Table II);
        // 2xC2050 pools to the C2070 column, 321,060.
        let p = policy(Some("2xC2050"));
        let (v, t) = p.admit(227_023, true).unwrap();
        assert_eq!((v, t.as_str()), (Verdict::Admit, "C2050"));
        let (v, t) = p.admit(227_024, true).unwrap();
        assert_eq!((v, t.as_str()), (Verdict::Route, "2xC2050"));
        let (v, _) = p.admit(321_060, true).unwrap();
        assert_eq!(v, Verdict::Route);
        let err = p.admit(321_061, true).unwrap_err();
        match err {
            Error::GraphTooLarge { needed, capacity } => assert!(needed > capacity),
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(p.max_n(), 321_060);
    }

    #[test]
    fn no_fleet_rejects_at_device_capacity() {
        let p = policy(None);
        assert!(p.admit(227_023, true).is_ok());
        assert!(matches!(
            p.admit(227_024, true),
            Err(Error::GraphTooLarge { .. })
        ));
        assert_eq!(p.max_n(), 227_023);
    }

    #[test]
    fn queue_admits_up_to_slots_then_refuses_past_depth() {
        let q = Queue::new(2, 1);
        let p1 = q.acquire().unwrap();
        let p2 = q.acquire().unwrap();
        assert_eq!(p1.wait_s, 0.0);
        // Slots are full; the wait line holds one. Simulate the waiter
        // being present by checking refusal logic from another thread.
        std::thread::scope(|s| {
            let waiter = s.spawn(|| q.acquire().map(|p| p.wait_s));
            // Give the waiter time to enter the line, then the next
            // arrival must be refused.
            while q.state.lock().unwrap().waiting == 0 {
                std::thread::yield_now();
            }
            assert!(q.acquire().is_err(), "line is at depth");
            drop(p1);
            let wait_s = waiter.join().unwrap().unwrap();
            assert!(wait_s >= 0.0);
        });
        drop(p2);
        // Everything drained; a fresh request is immediate again.
        assert_eq!(q.acquire().unwrap().wait_s, 0.0);
    }
}
