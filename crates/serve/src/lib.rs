//! # trigon-serve — the persistent serving tier
//!
//! Turns the one-shot analysis pipeline into a daemon: load graphs
//! once, keep their expensive artifacts warm, and answer many queries
//! against them.
//!
//! * [`registry`] — named graphs plus two cache levels: the ALS
//!   decomposition keyed by `(graph, device, method)` (reused across
//!   workloads via [`trigon_core::Run::prebuilt_als`]) and memoized
//!   report JSON keyed by the full query coordinate. Warm counts are
//!   bit-identical to cold runs — the artifact path feeds the exact
//!   decomposition a cold run would build.
//! * [`admission`] — the §IV capacity gate: Eqs. 1–2 under the S-UTM
//!   packing admit a graph to the primary device, route it to a
//!   pooled-memory fleet roster, or reject it (CLI exit 5) before any
//!   layout work; plus the bounded queue that refuses overflow load.
//! * [`protocol`] — length-prefixed or NDJSON framing of the
//!   `load` / `list` / `evict` / `query` / `report` / `shutdown` ops,
//!   with server error codes equal to the CLI's exit codes.
//! * [`server`] — the dispatcher and its transports (stdio / pipe,
//!   TCP, Unix socket), one thread per connection over shared caches;
//!   query batches amortize the simulated H2D upload and every report
//!   carries the schema-v8 `serving` section.

#![deny(missing_docs)]

pub mod admission;
pub mod protocol;
pub mod registry;
pub mod server;

pub use admission::{Permit, Policy, Queue, Verdict};
pub use protocol::{
    err_response, ok_response, parse_request, LoadSource, QueryItem, Request, Wire,
};
pub use registry::{generate, result_key, GraphInfo, Registry, RegistryStats};
pub use server::{Server, ServerConfig};
