//! The graph registry: named loaded graphs plus two cache levels the
//! serving tier reuses across queries.
//!
//! * **Artifact cache** — the BFS forest / `LevelMap` / ALS
//!   decomposition ([`trigon_core::build_als`]) behind an `Arc`, keyed
//!   by `(graph, device, method)`. A warm entry skips straight to
//!   dispatch via [`trigon_core::Run::prebuilt_als`]; entries for the
//!   same graph under a different key share one `Arc` (the
//!   decomposition is graph-invariant), so a re-key never rebuilds.
//! * **Result cache** — the finished report JSON keyed by the full
//!   query coordinate `(graph, target, method, workload, k)`. A warm
//!   entry replays the report without executing anything; the serving
//!   section is patched per request, so the replay is still attributed
//!   honestly as a `cache: "hit"`.
//!
//! Evicting a graph drops it from all three maps atomically.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use trigon_core::als::{build_als, Als};
use trigon_core::Error;
use trigon_graph::{gen, Graph};
use trigon_telemetry::Json;

/// How a registered graph came to be — shown by `list` so a client can
/// tell datasets from generated fixtures.
#[derive(Debug, Clone)]
pub struct GraphInfo {
    /// Registry name.
    pub name: String,
    /// Vertices.
    pub n: u32,
    /// Edges.
    pub m: usize,
    /// Provenance: `"file:PATH"` or `"gen:MODEL/n=N/seed=S"`.
    pub source: String,
    /// Artifact-cache entries currently keyed to this graph.
    pub artifact_entries: usize,
    /// Result-cache entries currently keyed to this graph.
    pub result_entries: usize,
}

/// Counters the `report` op exposes — every cache and admission
/// outcome since the server started.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegistryStats {
    /// Queries answered from the result cache.
    pub result_hits: u64,
    /// Queries that executed (and populated the result cache).
    pub result_misses: u64,
    /// Queries that reused a cached ALS decomposition.
    pub artifact_hits: u64,
    /// Queries that built (and cached) the decomposition.
    pub artifact_misses: u64,
    /// Graphs evicted.
    pub evictions: u64,
}

struct Registered {
    graph: Arc<Graph>,
    source: String,
}

#[derive(Default)]
struct Caches {
    /// `(graph, device, method)` → shared ALS decomposition.
    artifacts: HashMap<(String, String, String), Arc<Vec<Als>>>,
    /// Canonical query key → finished report JSON (serving = null).
    results: HashMap<String, Json>,
    stats: RegistryStats,
}

/// Named graphs plus the artifact/result caches. All methods are
/// `&self` and internally locked; the locks are never held across an
/// execution, only across map operations.
#[derive(Default)]
pub struct Registry {
    graphs: Mutex<HashMap<String, Registered>>,
    caches: Mutex<Caches>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `graph` under `name`.
    ///
    /// # Errors
    ///
    /// [`Error::BadConfig`] if the name is taken (evict first — silent
    /// replacement would orphan cache entries a client believes warm).
    pub fn load(&self, name: &str, graph: Graph, source: String) -> Result<(u32, usize), Error> {
        let mut graphs = self.graphs.lock().unwrap();
        if graphs.contains_key(name) {
            return Err(Error::bad_config(format!(
                "graph {name:?} is already loaded; evict it first"
            )));
        }
        let (n, m) = (graph.n(), graph.m());
        graphs.insert(
            name.to_string(),
            Registered {
                graph: Arc::new(graph),
                source,
            },
        );
        Ok((n, m))
    }

    /// Looks up a graph by name.
    ///
    /// # Errors
    ///
    /// [`Error::BadConfig`] (CLI exit 2) for an unloaded name.
    pub fn get(&self, name: &str) -> Result<Arc<Graph>, Error> {
        self.graphs
            .lock()
            .unwrap()
            .get(name)
            .map(|r| Arc::clone(&r.graph))
            .ok_or_else(|| {
                Error::bad_config(format!("graph {name:?} is not loaded (use the load op)"))
            })
    }

    /// Evicts a graph and every artifact/result cached for it.
    ///
    /// # Errors
    ///
    /// [`Error::BadConfig`] for an unloaded name.
    pub fn evict(&self, name: &str) -> Result<(), Error> {
        let mut graphs = self.graphs.lock().unwrap();
        if graphs.remove(name).is_none() {
            return Err(Error::bad_config(format!("graph {name:?} is not loaded")));
        }
        let mut caches = self.caches.lock().unwrap();
        caches.artifacts.retain(|(g, _, _), _| g != name);
        let prefix = result_key_prefix(name);
        caches.results.retain(|k, _| !k.starts_with(&prefix));
        caches.stats.evictions += 1;
        Ok(())
    }

    /// Every loaded graph, sorted by name.
    #[must_use]
    pub fn list(&self) -> Vec<GraphInfo> {
        let graphs = self.graphs.lock().unwrap();
        let caches = self.caches.lock().unwrap();
        let mut out: Vec<GraphInfo> = graphs
            .iter()
            .map(|(name, r)| GraphInfo {
                name: name.clone(),
                n: r.graph.n(),
                m: r.graph.m(),
                source: r.source.clone(),
                artifact_entries: caches
                    .artifacts
                    .keys()
                    .filter(|(g, _, _)| g == name)
                    .count(),
                result_entries: {
                    let prefix = result_key_prefix(name);
                    caches
                        .results
                        .keys()
                        .filter(|k| k.starts_with(&prefix))
                        .count()
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The ALS decomposition for `(graph, device, method)` and whether
    /// it was already cached. A miss first tries to share another key's
    /// `Arc` for the same graph (the decomposition is graph-invariant)
    /// and only rebuilds when the graph has no entry at all; either way
    /// the miss is recorded, because this *key* had to be populated.
    #[must_use]
    pub fn artifacts(
        &self,
        name: &str,
        graph: &Graph,
        device: &str,
        method: &str,
    ) -> (Arc<Vec<Als>>, bool) {
        let key = (name.to_string(), device.to_string(), method.to_string());
        {
            let mut caches = self.caches.lock().unwrap();
            if let Some(a) = caches.artifacts.get(&key) {
                let a = Arc::clone(a);
                caches.stats.artifact_hits += 1;
                return (a, true);
            }
            if let Some(a) = caches
                .artifacts
                .iter()
                .find(|((g, _, _), _)| g == name)
                .map(|(_, a)| Arc::clone(a))
            {
                caches.artifacts.insert(key, Arc::clone(&a));
                caches.stats.artifact_misses += 1;
                return (a, false);
            }
        }
        // Build outside the lock — decompositions can take a while and
        // other requests should not queue behind map access. A racing
        // builder may insert first; last write wins and both Arcs hold
        // the same bit-identical decomposition.
        let als = Arc::new(build_als(graph));
        let mut caches = self.caches.lock().unwrap();
        caches.artifacts.insert(key, Arc::clone(&als));
        caches.stats.artifact_misses += 1;
        (als, false)
    }

    /// Fetches a memoized report for the canonical query key, counting
    /// the hit/miss.
    #[must_use]
    pub fn result(&self, key: &str) -> Option<Json> {
        let mut caches = self.caches.lock().unwrap();
        let hit = caches.results.get(key).cloned();
        if hit.is_some() {
            caches.stats.result_hits += 1;
        } else {
            caches.stats.result_misses += 1;
        }
        hit
    }

    /// Memoizes a finished report under the canonical query key.
    pub fn put_result(&self, key: &str, report: Json) {
        self.caches
            .lock()
            .unwrap()
            .results
            .insert(key.to_string(), report);
    }

    /// Snapshot of the cache counters.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        self.caches.lock().unwrap().stats
    }
}

/// The canonical result-cache key for one query coordinate. `target`
/// is the device or fleet the query executes on, so the same workload
/// admitted to different hardware memoizes separately.
#[must_use]
pub fn result_key(name: &str, target: &str, method: &str, workload: &str, k: u32) -> String {
    format!(
        "{}{target}|{method}|{workload}|{k}",
        result_key_prefix(name)
    )
}

/// Prefix of every result key for `name` — eviction and `list` match
/// on it. The `|` separator cannot appear in a registry name (the
/// protocol rejects it), so prefixes never collide across names.
fn result_key_prefix(name: &str) -> String {
    format!("{name}|")
}

/// Builds one of the CLI's named graph models — the same seven the
/// `trigon gen` front end offers, shared here so the daemon's `load`
/// op and the CLI generate identical fixtures from identical specs.
#[must_use]
pub fn generate(model: &str, n: u32, seed: u64) -> Option<Graph> {
    Some(match model {
        "gnp" => gen::gnp(n, 16.0 / f64::from(n).max(1.0), seed),
        "ba" => gen::barabasi_albert(n, 8.min(n.saturating_sub(1)).max(1), seed),
        "ws" => gen::watts_strogatz(n, 8.min(n.saturating_sub(2) / 2 * 2).max(2), 0.1, seed),
        "ring" => gen::community_ring(n, 250.min(n.max(2)), 0.3, 4, seed),
        "rmat" => gen::rmat_social(n.next_power_of_two(), 8 * n as usize, seed),
        "complete" => gen::complete(n),
        "grid" => {
            let side = (f64::from(n).sqrt() as u32).max(1);
            gen::grid2d(side, side)
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        gen::gnp(60, 0.1, 1)
    }

    #[test]
    fn load_get_evict_roundtrip() {
        let r = Registry::new();
        let (n, m) = r.load("a", tiny(), "test".into()).unwrap();
        assert_eq!(n, 60);
        assert!(m > 0);
        assert_eq!(r.get("a").unwrap().n(), 60);
        assert!(
            r.load("a", tiny(), "test".into()).is_err(),
            "duplicate name"
        );
        r.evict("a").unwrap();
        assert!(r.get("a").is_err());
        assert!(r.evict("a").is_err());
        assert_eq!(r.stats().evictions, 1);
    }

    #[test]
    fn artifact_cache_hits_on_second_fetch_and_shares_across_keys() {
        let r = Registry::new();
        r.load("a", tiny(), "test".into()).unwrap();
        let g = r.get("a").unwrap();
        let (a1, hit1) = r.artifacts("a", &g, "C1060", "gpu-opt");
        assert!(!hit1);
        let (a2, hit2) = r.artifacts("a", &g, "C1060", "gpu-opt");
        assert!(hit2);
        assert!(Arc::ptr_eq(&a1, &a2));
        // A different key misses but shares the Arc instead of rebuilding.
        let (a3, hit3) = r.artifacts("a", &g, "C2050", "cpu-fast");
        assert!(!hit3);
        assert!(Arc::ptr_eq(&a1, &a3));
        let s = r.stats();
        assert_eq!((s.artifact_hits, s.artifact_misses), (1, 2));
    }

    #[test]
    fn result_cache_and_eviction_scoping() {
        let r = Registry::new();
        r.load("a", tiny(), "test".into()).unwrap();
        r.load("ab", tiny(), "test".into()).unwrap();
        let ka = result_key("a", "C1060", "gpu-opt", "triangles", 3);
        let kab = result_key("ab", "C1060", "gpu-opt", "triangles", 3);
        assert!(r.result(&ka).is_none());
        r.put_result(&ka, Json::from("ra"));
        r.put_result(&kab, Json::from("rab"));
        assert_eq!(r.result(&ka), Some(Json::from("ra")));
        // Evicting "a" must not clip "ab"'s entries (prefix includes the
        // separator).
        r.evict("a").unwrap();
        assert_eq!(r.result(&kab), Some(Json::from("rab")));
        let list = r.list();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].name, "ab");
        assert_eq!(list[0].result_entries, 1);
    }

    #[test]
    fn generate_matches_cli_models() {
        for model in ["gnp", "ba", "ws", "ring", "rmat", "complete", "grid"] {
            let g = generate(model, 64, 7).unwrap();
            assert!(g.n() > 0, "{model}");
        }
        assert!(generate("nope", 64, 7).is_none());
    }
}
