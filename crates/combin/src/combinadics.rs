//! Combinadics: rank/unrank between lexicographic indices and
//! combinations (strategy D of §VIII).
//!
//! The paper's equal-work division hands simulated GPU thread `t` the
//! combinations with indices `[t·⌈T/p⌉, …)` and needs to materialize the
//! *first* combination of that range directly from its index — "there
//! exists a mapping from natural numbers i.e., indices in the
//! lexicographic order to combinations, and this methodology is also known
//! as combinadics" (§VIII-D). The unranking scheme is Buckles & Lybanon's
//! *TOMS* Algorithm 515 (the paper's reference \[3\]), restated 0-based.
//!
//! Lexicographic convention: combinations are ascending `k`-subsets of
//! `{0, …, n-1}`; index 0 is `[0, 1, …, k-1]`.

use crate::binom::binom;

/// Returns the lexicographic rank of `comb` among ascending `k`-subsets of
/// `{0, …, n-1}`.
///
/// For each position `i`, every combination that agrees on positions
/// `< i` and has a *smaller* element at `i` contributes
/// `C(n - 1 - v, k - 1 - i)` for each skipped value `v`.
///
/// # Panics
///
/// Panics if `comb` is not strictly ascending or an element is `≥ n`.
///
/// ```
/// use trigon_combin::rank;
/// assert_eq!(rank(&[0, 1, 2], 5), 0);
/// assert_eq!(rank(&[2, 3, 4], 5), 9); // last of C(5,3) = 10
/// ```
#[must_use]
pub fn rank(comb: &[u32], n: u32) -> u128 {
    let k = comb.len() as u32;
    assert!(comb.windows(2).all(|w| w[0] < w[1]), "not ascending");
    assert!(
        comb.last().is_none_or(|&last| last < n),
        "element out of range"
    );
    let mut r: u128 = 0;
    let mut lo = 0u32;
    for (i, &c) in comb.iter().enumerate() {
        for v in lo..c {
            r += binom(u64::from(n - 1 - v), u64::from(k - 1 - i as u32));
        }
        lo = c + 1;
    }
    r
}

/// Unranks lexicographic index `idx` into the `k`-combination of
/// `{0, …, n-1}`, writing into `out` (cleared first). Allocation-free when
/// `out` has capacity `k` — the simulated kernel unranks once per thread.
///
/// Greedy digit extraction: position `i` takes the smallest value `v ≥ lo`
/// such that fewer than `C(n-1-v, k-1-i)` combinations remain below `idx`.
/// Total work is `O(n)` across all positions since `v` never decreases.
///
/// # Panics
///
/// Panics if `idx ≥ C(n, k)`.
pub fn unrank_into(mut idx: u128, n: u32, k: u32, out: &mut Vec<u32>) {
    let total = binom(u64::from(n), u64::from(k));
    assert!(
        idx < total,
        "unrank index {idx} out of range (C({n},{k}) = {total})"
    );
    out.clear();
    let mut v = 0u32;
    for i in 0..k {
        loop {
            let with_v = binom(u64::from(n - 1 - v), u64::from(k - 1 - i));
            if idx < with_v {
                out.push(v);
                v += 1;
                break;
            }
            idx -= with_v;
            v += 1;
        }
    }
}

/// Convenience wrapper around [`unrank_into`] that allocates the result.
///
/// ```
/// use trigon_combin::{rank, unrank};
/// let c = unrank(7, 5, 3);
/// assert_eq!(rank(&c, 5), 7);
/// ```
#[must_use]
pub fn unrank(idx: u128, n: u32, k: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(k as usize);
    unrank_into(idx, n, k, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binom::binom;
    use crate::lex::LexCombinations;

    #[test]
    fn rank_of_first_is_zero() {
        assert_eq!(rank(&[0, 1, 2, 3], 9), 0);
        assert_eq!(rank(&[], 5), 0);
    }

    #[test]
    fn rank_of_last_is_total_minus_one() {
        let n = 8u32;
        let k = 3u32;
        let last: Vec<u32> = (n - k..n).collect();
        assert_eq!(rank(&last, n), binom(u64::from(n), u64::from(k)) - 1);
    }

    #[test]
    fn rank_agrees_with_enumeration_order() {
        for (i, c) in LexCombinations::new(9, 4).enumerate() {
            assert_eq!(rank(&c, 9), i as u128, "combination {c:?}");
        }
    }

    #[test]
    fn unrank_agrees_with_enumeration_order() {
        for (i, c) in LexCombinations::new(7, 3).enumerate() {
            assert_eq!(unrank(i as u128, 7, 3), c);
        }
    }

    #[test]
    fn unrank_rank_roundtrip_various_shapes() {
        for &(n, k) in &[(1u32, 1u32), (5, 5), (12, 1), (12, 6), (30, 3)] {
            let total = binom(u64::from(n), u64::from(k));
            // probe boundaries and a spread of interior indices
            let probes = [
                0,
                1,
                total / 3,
                total / 2,
                total.saturating_sub(2),
                total - 1,
            ];
            for &idx in &probes {
                if idx >= total {
                    continue;
                }
                let c = unrank(idx, n, k);
                assert_eq!(rank(&c, n), idx, "n={n} k={k} idx={idx}");
            }
        }
    }

    #[test]
    fn unrank_k_zero() {
        assert!(unrank(0, 5, 0).is_empty());
    }

    #[test]
    fn unrank_large_space() {
        // C(100_000, 3): unrank the exact middle and round-trip.
        let n = 100_000u32;
        let total = binom(u64::from(n), 3);
        let mid = total / 2;
        let c = unrank(mid, n, 3);
        assert_eq!(rank(&c, n), mid);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
        assert!(c[2] < n);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unrank_index_too_large_panics() {
        let _ = unrank(10, 5, 3); // C(5,3) = 10
    }

    #[test]
    #[should_panic(expected = "not ascending")]
    fn rank_rejects_unsorted() {
        let _ = rank(&[2, 1], 5);
    }

    #[test]
    fn unrank_into_reuses_buffer() {
        let mut buf = Vec::with_capacity(3);
        unrank_into(0, 6, 3, &mut buf);
        assert_eq!(buf, vec![0, 1, 2]);
        unrank_into(19, 6, 3, &mut buf); // last of C(6,3)=20
        assert_eq!(buf, vec![3, 4, 5]);
    }
}
