//! Binomial coefficients.
//!
//! The combination spaces in the paper reach `C(100_000, 3) ≈ 1.7·10^14`,
//! well past `u32` but comfortably inside `u64`; we compute in `u128`
//! throughout so that the general-`k` extensions (connected subgraphs of
//! size `k`, `k`-cliques, `k`-independent sets, §III) never overflow
//! silently.

/// Computes `C(n, k)` exactly, panicking on overflow of `u128`.
///
/// Uses the multiplicative formula with interleaved division, which stays
/// exact because each prefix product `n·(n-1)·…·(n-i+1)/i!` is itself a
/// binomial coefficient.
///
/// ```
/// use trigon_combin::binom;
/// assert_eq!(binom(5, 2), 10);
/// assert_eq!(binom(0, 0), 1);
/// assert_eq!(binom(4, 7), 0);
/// assert_eq!(binom(100_000, 3), 166_661_666_700_000);
/// ```
#[must_use]
pub fn binom(n: u64, k: u64) -> u128 {
    binom_checked(n, k).expect("binomial coefficient overflowed u128")
}

/// Computes `C(n, k)`, returning `None` on `u128` overflow.
#[must_use]
pub fn binom_checked(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    // Symmetry keeps the loop short for k close to n.
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1) is exact at every step.
        acc = acc.checked_mul(u128::from(n - i))?;
        acc /= u128::from(i + 1);
    }
    Some(acc)
}

/// A cached table of binomial coefficients `C(n, k)` for `n ≤ max_n`,
/// `k ≤ max_k`.
///
/// Combination unranking (Algorithm 515) evaluates `C(·, ·)` in an inner
/// loop; per the session performance guide, the hot path should not
/// recompute them. The table is row-major over `n` with `max_k + 1`
/// entries per row.
#[derive(Debug, Clone)]
pub struct BinomTable {
    max_n: u64,
    max_k: u64,
    rows: Vec<u128>,
}

impl BinomTable {
    /// Builds the table with Pascal's rule.
    ///
    /// Memory: `(max_n + 1) · (max_k + 1)` `u128`s; for `n = 100_000`,
    /// `k = 5`, that is ≈ 9.6 MB — cheap next to the graph itself.
    #[must_use]
    pub fn new(max_n: u64, max_k: u64) -> Self {
        let w = (max_k + 1) as usize;
        let mut rows = vec![0u128; (max_n as usize + 1) * w];
        for n in 0..=max_n as usize {
            rows[n * w] = 1;
            let kmax = max_k.min(n as u64) as usize;
            for k in 1..=kmax {
                let above = rows[(n - 1) * w + k];
                let diag = rows[(n - 1) * w + k - 1];
                rows[n * w + k] = above
                    .checked_add(diag)
                    .expect("binomial table overflowed u128");
            }
        }
        Self { max_n, max_k, rows }
    }

    /// Largest `n` stored.
    #[must_use]
    pub fn max_n(&self) -> u64 {
        self.max_n
    }

    /// Largest `k` stored.
    #[must_use]
    pub fn max_k(&self) -> u64 {
        self.max_k
    }

    /// Looks up `C(n, k)`. Out-of-range `k > max_k` with `k ≤ n` panics;
    /// `k > n` returns 0 as usual.
    #[inline]
    #[must_use]
    pub fn get(&self, n: u64, k: u64) -> u128 {
        if k > n {
            return 0;
        }
        assert!(
            n <= self.max_n && k <= self.max_k,
            "BinomTable::get({n}, {k}) outside table bounds ({}, {})",
            self.max_n,
            self.max_k
        );
        self.rows[n as usize * (self.max_k as usize + 1) + k as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(binom(0, 0), 1);
        assert_eq!(binom(1, 0), 1);
        assert_eq!(binom(1, 1), 1);
        assert_eq!(binom(6, 3), 20);
        assert_eq!(binom(10, 5), 252);
        assert_eq!(binom(52, 5), 2_598_960);
    }

    #[test]
    fn k_greater_than_n_is_zero() {
        assert_eq!(binom(3, 4), 0);
        assert_eq!(binom(0, 1), 0);
    }

    #[test]
    fn symmetry() {
        for n in 0..40u64 {
            for k in 0..=n {
                assert_eq!(binom(n, k), binom(n, n - k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn pascal_rule() {
        for n in 1..60u64 {
            for k in 1..=n {
                assert_eq!(binom(n, k), binom(n - 1, k) + binom(n - 1, k - 1));
            }
        }
    }

    #[test]
    fn paper_scale_values() {
        // C(n,3) = n(n-1)(n-2)/6 at the paper's evaluation sizes.
        assert_eq!(binom(1200, 3), 1200 * 1199 * 1198 / 6);
        assert_eq!(binom(25_000, 3), 25_000u128 * 24_999 * 24_998 / 6);
        assert_eq!(binom(100_000, 3), 100_000u128 * 99_999 * 99_998 / 6);
    }

    #[test]
    fn checked_overflow_detected() {
        // C(1000, 500) overflows u128 (~2.7e299); must not panic, must be None.
        assert_eq!(binom_checked(1000, 500), None);
    }

    #[test]
    fn large_but_representable() {
        // C(128, 30) ≈ 2.3e30 fits u128 with room for the ×(n-i)
        // intermediate of the multiplicative method.
        // Cross-checked against Pascal's rule by `pascal_rule` plus the
        // identity C(128,30) = C(127,30) + C(127,29).
        assert_eq!(
            binom_checked(128, 30),
            Some(binom(127, 30) + binom(127, 29))
        );
        assert!(binom_checked(128, 30).unwrap() > 1u128 << 96);
    }

    #[test]
    fn table_matches_direct() {
        let t = BinomTable::new(200, 6);
        for n in 0..=200u64 {
            for k in 0..=6u64 {
                assert_eq!(t.get(n, k), binom(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn table_k_above_n_zero() {
        let t = BinomTable::new(10, 5);
        assert_eq!(t.get(2, 5), 0);
        assert_eq!(t.get(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "outside table bounds")]
    fn table_out_of_bounds_panics() {
        let t = BinomTable::new(10, 3);
        let _ = t.get(10, 4); // k ≤ n but k > max_k
    }
}
