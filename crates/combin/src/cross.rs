//! Constrained combination spaces over *two adjacent BFS levels*.
//!
//! Algorithm 2 of the paper counts triangles per adjacent level set
//! (ALS) by calling `GenNxtComb(firstLvl)`, `GenNxtComb(bothLvls)` and —
//! for the final set — `GenNxtComb(secondLvl)`. The `bothLvls` call
//! "returns combinations containing 3 nodes from the set of consecutive
//! levels, out of which at least 1 is from the firstLvl"; combined with the
//! separate `firstLvl` scan, duplicate checking is eliminated because each
//! level's internal combinations are visited exactly once and each mixed
//! combination is visited by exactly one ALS.
//!
//! This module provides the four combination modes as countable,
//! unrankable, iterable spaces so that the simulated GPU can hand each
//! thread an equal slice (§VIII-D) of any of them.
//!
//! Nodes are addressed by *local position*: the first level occupies
//! positions `0 … a-1`, the second level `a … a+b-1`.

use crate::binom::binom;
use crate::combinadics::unrank_into;
use crate::lex::{first_combination, next_combination};

/// Which slice of the two-level combination space to enumerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossMode {
    /// All `k` nodes from the first level (`GenNxtComb(firstLvl)`).
    FirstOnly,
    /// At least one node from *each* level (`GenNxtComb(bothLvls)` after
    /// removing the overlap with the dedicated single-level scans).
    Mixed,
    /// All `k` nodes from the second level (`GenNxtComb(secondLvl)` — only
    /// issued for the last ALS).
    SecondOnly,
    /// At least one node from the first level: `FirstOnly ∪ Mixed`. This is
    /// the literal `bothLvls` restriction quoted in §VII and is a *lex
    /// prefix* of the full `C(a+b, k)` order (a combination touches the
    /// first level iff its smallest element is `< a`).
    AtLeastOneFirst,
}

/// A two-level combination space: `a` first-level nodes, `b` second-level
/// nodes, subsets of size `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelSpace {
    /// First-level node count.
    pub a: u32,
    /// Second-level node count.
    pub b: u32,
    /// Subset size.
    pub k: u32,
}

impl TwoLevelSpace {
    /// Creates the space.
    #[must_use]
    pub fn new(a: u32, b: u32, k: u32) -> Self {
        Self { a, b, k }
    }

    /// Number of combinations in `mode`.
    ///
    /// ```
    /// use trigon_combin::{CrossMode, TwoLevelSpace};
    /// let s = TwoLevelSpace::new(3, 4, 3);
    /// assert_eq!(s.count(CrossMode::FirstOnly), 1);          // C(3,3)
    /// assert_eq!(s.count(CrossMode::SecondOnly), 4);         // C(4,3)
    /// assert_eq!(s.count(CrossMode::Mixed), 35 - 1 - 4);     // C(7,3)-C(3,3)-C(4,3)
    /// assert_eq!(s.count(CrossMode::AtLeastOneFirst), 35 - 4);
    /// ```
    #[must_use]
    pub fn count(&self, mode: CrossMode) -> u128 {
        let (a, b, k) = (u64::from(self.a), u64::from(self.b), u64::from(self.k));
        match mode {
            CrossMode::FirstOnly => binom(a, k),
            CrossMode::SecondOnly => binom(b, k),
            // Mixed needs ≥ 1 element from each level, impossible for k < 2
            // (the inclusion–exclusion below would underflow at k = 0).
            CrossMode::Mixed if k < 2 => 0,
            CrossMode::Mixed => binom(a + b, k) - binom(a, k) - binom(b, k),
            CrossMode::AtLeastOneFirst if k == 0 => 0,
            CrossMode::AtLeastOneFirst => binom(a + b, k) - binom(b, k),
        }
    }

    /// Total union size `C(a + b, k)`.
    #[must_use]
    pub fn total(&self) -> u128 {
        binom(u64::from(self.a) + u64::from(self.b), u64::from(self.k))
    }

    /// Cursor positioned at the first combination of `mode`.
    #[must_use]
    pub fn cursor(&self, mode: CrossMode) -> CrossCursor {
        self.cursor_at(mode, 0)
    }

    /// Cursor positioned at combination index `idx` of `mode` — the
    /// equal-division entry point: thread `t` starts at
    /// `idx = t · ⌈count / p⌉` and advances with
    /// [`CrossCursor::advance`].
    ///
    /// `idx == count(mode)` yields an exhausted cursor (useful for empty
    /// slices); larger indices panic.
    #[must_use]
    pub fn cursor_at(&self, mode: CrossMode, idx: u128) -> CrossCursor {
        let count = self.count(mode);
        assert!(idx <= count, "cursor index {idx} beyond space size {count}");
        if idx == count {
            return CrossCursor::exhausted(*self, mode);
        }
        match mode {
            CrossMode::FirstOnly => {
                let mut comb = Vec::with_capacity(self.k as usize);
                unrank_into(idx, self.a, self.k, &mut comb);
                CrossCursor::single(*self, mode, comb)
            }
            CrossMode::SecondOnly => {
                let mut comb = Vec::with_capacity(self.k as usize);
                unrank_into(idx, self.b, self.k, &mut comb);
                for v in &mut comb {
                    *v += self.a;
                }
                CrossCursor::single(*self, mode, comb)
            }
            CrossMode::AtLeastOneFirst => {
                // Lex-prefix property: plain unrank over the union.
                let mut comb = Vec::with_capacity(self.k as usize);
                unrank_into(idx, self.a + self.b, self.k, &mut comb);
                debug_assert!(comb[0] < self.a);
                CrossCursor::single(*self, mode, comb)
            }
            CrossMode::Mixed => self.unrank_mixed(idx),
        }
    }

    /// Strategy C (§VIII-C) ranges: splits `mode` into contiguous index
    /// ranges grouped by the combination's *leading element* — thread `t`
    /// owns the combinations starting with local position `t`. Only
    /// defined for the lex-ordered modes; [`CrossMode::Mixed`] uses block
    /// order, where leading elements are not contiguous.
    ///
    /// Empty ranges for infeasible leading elements are omitted, so the
    /// returned ranges tile `[0, count(mode))` exactly.
    ///
    /// # Panics
    ///
    /// Panics for [`CrossMode::Mixed`].
    #[must_use]
    pub fn leading_ranges(&self, mode: CrossMode) -> Vec<crate::strategy::ThreadRange> {
        let (n, k) = match mode {
            CrossMode::FirstOnly => (u64::from(self.a), u64::from(self.k)),
            CrossMode::SecondOnly => (u64::from(self.b), u64::from(self.k)),
            CrossMode::AtLeastOneFirst => {
                (u64::from(self.a) + u64::from(self.b), u64::from(self.k))
            }
            CrossMode::Mixed => {
                panic!("leading-element split undefined for block-ordered Mixed mode")
            }
        };
        if k == 0 || k > n {
            return Vec::new();
        }
        let total = self.count(mode);
        let mut out = Vec::new();
        let mut start = 0u128;
        let mut t = 0u64;
        while start < total && t + k <= n {
            // Combinations with leading element t: C(n - 1 - t, k - 1),
            // clipped to the mode's lex prefix (AtLeastOneFirst ends at
            // count(mode)).
            let len = binom(n - 1 - t, k - 1).min(total - start);
            if len > 0 {
                out.push(crate::strategy::ThreadRange { start, len });
            }
            start += len;
            t += 1;
        }
        out
    }

    /// Inclusive range of first-level picks `t` that produce non-empty
    /// mixed blocks: `max(1, k-b) ..= min(k-1, a)`.
    fn mixed_t_range(&self) -> (u32, u32) {
        let lo = 1u32.max(self.k.saturating_sub(self.b));
        let hi = self.k.saturating_sub(1).min(self.a);
        (lo, hi)
    }

    /// Mixed-mode unranking in *block order*: blocks ascend by `t` (picks
    /// from the first level); within a block the first-level combination
    /// is the major index and the second-level one the minor. Block order
    /// is a bijection onto `0 … count(Mixed)-1`, which is all equal
    /// division requires; it is not global lex order.
    fn unrank_mixed(&self, mut idx: u128) -> CrossCursor {
        let (lo, hi) = self.mixed_t_range();
        for t in lo..=hi {
            let in_a = binom(u64::from(self.a), u64::from(t));
            let in_b = binom(u64::from(self.b), u64::from(self.k - t));
            let block = in_a * in_b;
            if idx < block {
                let (ia, ib) = (idx / in_b, idx % in_b);
                let mut comb_a = Vec::with_capacity(t as usize);
                unrank_into(ia, self.a, t, &mut comb_a);
                let mut comb_b = Vec::with_capacity((self.k - t) as usize);
                unrank_into(ib, self.b, self.k - t, &mut comb_b);
                return CrossCursor::mixed(*self, t, comb_a, comb_b);
            }
            idx -= block;
        }
        unreachable!("mixed index validated against count() before dispatch")
    }
}

/// Streaming cursor over one [`CrossMode`] slice of a [`TwoLevelSpace`].
///
/// The current combination is exposed as ascending *local positions*
/// (first level `0…a-1`, second level `a…a+b-1`) via
/// [`CrossCursor::current`]; [`CrossCursor::advance`] steps to the
/// successor without allocating.
#[derive(Debug, Clone)]
pub struct CrossCursor {
    space: TwoLevelSpace,
    mode: CrossMode,
    state: CursorState,
    /// Scratch holding the combination in global positions.
    global: Vec<u32>,
}

#[derive(Debug, Clone)]
enum CursorState {
    Exhausted,
    /// Single underlying lex stream (FirstOnly / SecondOnly /
    /// AtLeastOneFirst). Stored in global positions already.
    Single,
    /// Mixed block state: `t` picks from the first level.
    Mixed {
        t: u32,
        comb_a: Vec<u32>,
        comb_b: Vec<u32>,
    },
}

impl CrossCursor {
    fn exhausted(space: TwoLevelSpace, mode: CrossMode) -> Self {
        Self {
            space,
            mode,
            state: CursorState::Exhausted,
            global: Vec::new(),
        }
    }

    fn single(space: TwoLevelSpace, mode: CrossMode, comb: Vec<u32>) -> Self {
        Self {
            space,
            mode,
            state: CursorState::Single,
            global: comb,
        }
    }

    fn mixed(space: TwoLevelSpace, t: u32, comb_a: Vec<u32>, comb_b: Vec<u32>) -> Self {
        let mut c = Self {
            space,
            mode: CrossMode::Mixed,
            state: CursorState::Mixed { t, comb_a, comb_b },
            global: Vec::with_capacity(space.k as usize),
        };
        c.rebuild_global();
        c
    }

    fn rebuild_global(&mut self) {
        if let CursorState::Mixed { comb_a, comb_b, .. } = &self.state {
            self.global.clear();
            self.global.extend_from_slice(comb_a);
            self.global.extend(comb_b.iter().map(|&v| v + self.space.a));
        }
    }

    /// The current combination in ascending local positions, or `None`
    /// once exhausted.
    #[must_use]
    pub fn current(&self) -> Option<&[u32]> {
        match self.state {
            CursorState::Exhausted => None,
            _ => Some(&self.global),
        }
    }

    /// The mode this cursor enumerates.
    #[must_use]
    pub fn mode(&self) -> CrossMode {
        self.mode
    }

    /// Steps to the next combination; returns `false` once exhausted.
    pub fn advance(&mut self) -> bool {
        let space = self.space;
        match &mut self.state {
            CursorState::Exhausted => false,
            CursorState::Single => {
                let ok = match self.mode {
                    CrossMode::FirstOnly => next_combination(&mut self.global, space.a),
                    CrossMode::SecondOnly => {
                        // Stored shifted by +a; successor in shifted space.
                        for v in &mut self.global {
                            *v -= space.a;
                        }
                        let ok = next_combination(&mut self.global, space.b);
                        for v in &mut self.global {
                            *v += space.a;
                        }
                        ok
                    }
                    CrossMode::AtLeastOneFirst => {
                        next_combination(&mut self.global, space.a + space.b)
                            && self.global[0] < space.a
                    }
                    CrossMode::Mixed => unreachable!("mixed uses CursorState::Mixed"),
                };
                if !ok {
                    self.state = CursorState::Exhausted;
                }
                ok
            }
            CursorState::Mixed { t, comb_a, comb_b } => {
                let k = space.k;
                if next_combination(comb_b, space.b) {
                    self.rebuild_global();
                    return true;
                }
                if next_combination(comb_a, space.a) {
                    *comb_b = first_combination(k - *t);
                    self.rebuild_global();
                    return true;
                }
                // Next block: mixed_t_range guarantees every t in range
                // yields a non-empty block (t ≤ a and k − t ≤ b).
                let (_, hi) = space.mixed_t_range();
                if *t >= hi {
                    self.state = CursorState::Exhausted;
                    return false;
                }
                *t += 1;
                *comb_a = first_combination(*t);
                *comb_b = first_combination(k - *t);
                self.rebuild_global();
                true
            }
        }
    }

    /// Consumes the cursor into an owning iterator (testing convenience;
    /// hot paths should loop over `current`/`advance`).
    pub fn into_iter_owned(mut self) -> impl Iterator<Item = Vec<u32>> {
        let mut first = true;
        std::iter::from_fn(move || {
            if first {
                first = false;
            } else if !self.advance() {
                return None;
            }
            self.current().map(<[u32]>::to_vec)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binom::binom;
    use std::collections::BTreeSet;

    fn collect(space: TwoLevelSpace, mode: CrossMode) -> Vec<Vec<u32>> {
        space.cursor(mode).into_iter_owned().collect()
    }

    #[test]
    fn k_zero_modes_overlap_on_empty_set() {
        // Degenerate k = 0: the empty combination belongs to both
        // single-level modes, so the three modes do not partition. Callers
        // (Algorithm 2 uses k = 3) never issue k = 0; we just pin the
        // behaviour.
        let s = TwoLevelSpace::new(3, 4, 0);
        assert_eq!(s.count(CrossMode::FirstOnly), 1);
        assert_eq!(s.count(CrossMode::SecondOnly), 1);
        assert_eq!(s.count(CrossMode::Mixed), 0);
        assert_eq!(s.count(CrossMode::AtLeastOneFirst), 0);
    }

    #[test]
    fn counts_partition_the_union() {
        // FirstOnly + Mixed + SecondOnly = C(a+b, k) for many shapes.
        for a in 0..7u32 {
            for b in 0..7u32 {
                for k in 1..5u32 {
                    let s = TwoLevelSpace::new(a, b, k);
                    assert_eq!(
                        s.count(CrossMode::FirstOnly)
                            + s.count(CrossMode::Mixed)
                            + s.count(CrossMode::SecondOnly),
                        s.total(),
                        "a={a} b={b} k={k}"
                    );
                    assert_eq!(
                        s.count(CrossMode::AtLeastOneFirst),
                        s.count(CrossMode::FirstOnly) + s.count(CrossMode::Mixed)
                    );
                }
            }
        }
    }

    #[test]
    fn enumeration_matches_count_and_is_distinct() {
        for a in 0..6u32 {
            for b in 0..6u32 {
                for k in 1..4u32 {
                    let s = TwoLevelSpace::new(a, b, k);
                    for mode in [
                        CrossMode::FirstOnly,
                        CrossMode::Mixed,
                        CrossMode::SecondOnly,
                        CrossMode::AtLeastOneFirst,
                    ] {
                        let all = collect(s, mode);
                        assert_eq!(
                            all.len() as u128,
                            s.count(mode),
                            "{mode:?} a={a} b={b} k={k}"
                        );
                        let set: BTreeSet<_> = all.iter().cloned().collect();
                        assert_eq!(set.len(), all.len(), "duplicates in {mode:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn mode_membership_constraints_hold() {
        let s = TwoLevelSpace::new(4, 5, 3);
        for c in collect(s, CrossMode::FirstOnly) {
            assert!(c.iter().all(|&v| v < s.a));
        }
        for c in collect(s, CrossMode::SecondOnly) {
            assert!(c.iter().all(|&v| v >= s.a && v < s.a + s.b));
        }
        for c in collect(s, CrossMode::Mixed) {
            assert!(c.iter().any(|&v| v < s.a), "{c:?} lacks first-level node");
            assert!(c.iter().any(|&v| v >= s.a), "{c:?} lacks second-level node");
        }
        for c in collect(s, CrossMode::AtLeastOneFirst) {
            assert!(c[0] < s.a, "{c:?} lacks first-level node");
        }
    }

    #[test]
    fn three_modes_tile_the_union_exactly() {
        let s = TwoLevelSpace::new(4, 4, 3);
        let mut seen = BTreeSet::new();
        for mode in [
            CrossMode::FirstOnly,
            CrossMode::Mixed,
            CrossMode::SecondOnly,
        ] {
            for c in collect(s, mode) {
                assert!(seen.insert(c.clone()), "duplicate across modes: {c:?}");
            }
        }
        assert_eq!(seen.len() as u128, s.total());
    }

    #[test]
    fn cursor_at_matches_sequential_enumeration() {
        let s = TwoLevelSpace::new(5, 6, 3);
        for mode in [
            CrossMode::FirstOnly,
            CrossMode::Mixed,
            CrossMode::SecondOnly,
            CrossMode::AtLeastOneFirst,
        ] {
            let all = collect(s, mode);
            for (i, expect) in all.iter().enumerate() {
                let cur = s.cursor_at(mode, i as u128);
                assert_eq!(
                    cur.current().unwrap(),
                    expect.as_slice(),
                    "{mode:?} idx {i}"
                );
            }
        }
    }

    #[test]
    fn cursor_at_resumes_correctly_mid_stream() {
        // Divide Mixed across 4 "threads" and check the slices concatenate
        // to the full enumeration — exactly the §VIII-D equal division.
        let s = TwoLevelSpace::new(6, 7, 3);
        let total = s.count(CrossMode::Mixed);
        let threads = 4u128;
        let per = total.div_ceil(threads);
        let mut stitched = Vec::new();
        for t in 0..threads {
            let start = t * per;
            if start >= total {
                break;
            }
            let quota = per.min(total - start);
            let mut cur = s.cursor_at(CrossMode::Mixed, start);
            for i in 0..quota {
                stitched.push(cur.current().unwrap().to_vec());
                let more = cur.advance();
                assert!(more || start + i + 1 == total);
            }
        }
        assert_eq!(stitched, collect(s, CrossMode::Mixed));
    }

    #[test]
    fn cursor_at_end_is_exhausted() {
        let s = TwoLevelSpace::new(3, 3, 2);
        let cur = s.cursor_at(CrossMode::Mixed, s.count(CrossMode::Mixed));
        assert!(cur.current().is_none());
    }

    #[test]
    fn empty_levels_are_handled() {
        let s = TwoLevelSpace::new(0, 5, 3);
        assert_eq!(s.count(CrossMode::FirstOnly), 0);
        assert_eq!(s.count(CrossMode::Mixed), 0);
        assert_eq!(s.count(CrossMode::AtLeastOneFirst), 0);
        assert_eq!(s.count(CrossMode::SecondOnly), binom(5, 3));
        assert!(collect(s, CrossMode::Mixed).is_empty());
        assert!(s.cursor(CrossMode::FirstOnly).current().is_none());
    }

    #[test]
    fn k_larger_than_union_is_empty() {
        let s = TwoLevelSpace::new(2, 2, 5);
        for mode in [
            CrossMode::FirstOnly,
            CrossMode::Mixed,
            CrossMode::SecondOnly,
            CrossMode::AtLeastOneFirst,
        ] {
            assert_eq!(s.count(mode), 0, "{mode:?}");
            assert!(collect(s, mode).is_empty());
        }
    }

    #[test]
    fn leading_ranges_tile_the_space() {
        for (a, b, k) in [(5u32, 7u32, 3u32), (3, 0, 2), (0, 6, 3), (4, 4, 4)] {
            let s = TwoLevelSpace::new(a, b, k);
            for mode in [
                CrossMode::FirstOnly,
                CrossMode::SecondOnly,
                CrossMode::AtLeastOneFirst,
            ] {
                let ranges = s.leading_ranges(mode);
                let mut next = 0u128;
                for r in &ranges {
                    assert_eq!(r.start, next, "{mode:?} a={a} b={b} k={k}");
                    assert!(r.len > 0);
                    next += r.len;
                }
                assert_eq!(next, s.count(mode), "{mode:?} a={a} b={b} k={k}");
            }
        }
    }

    #[test]
    fn leading_ranges_group_by_first_element() {
        let s = TwoLevelSpace::new(4, 6, 3);
        let ranges = s.leading_ranges(CrossMode::AtLeastOneFirst);
        for (t, r) in ranges.iter().enumerate() {
            // Every combination in range t starts with local position t.
            let first = s.cursor_at(CrossMode::AtLeastOneFirst, r.start);
            assert_eq!(first.current().unwrap()[0], t as u32);
            let last = s.cursor_at(CrossMode::AtLeastOneFirst, r.start + r.len - 1);
            assert_eq!(last.current().unwrap()[0], t as u32);
        }
    }

    #[test]
    #[should_panic(expected = "undefined for block-ordered")]
    fn leading_ranges_reject_mixed() {
        let _ = TwoLevelSpace::new(3, 3, 3).leading_ranges(CrossMode::Mixed);
    }

    #[test]
    fn at_least_one_first_is_lex_prefix() {
        // The AtLeastOneFirst stream must equal the first count() entries
        // of the plain lex enumeration over the union.
        let s = TwoLevelSpace::new(3, 4, 3);
        let want: Vec<Vec<u32>> = crate::lex::LexCombinations::new(s.a + s.b, s.k)
            .take(s.count(CrossMode::AtLeastOneFirst) as usize)
            .collect();
        assert_eq!(collect(s, CrossMode::AtLeastOneFirst), want);
    }
}
