//! Lexicographic combination generation (strategy B of §VIII).
//!
//! The successor rule is Mifsud's *CACM* Algorithm 154 — the paper's
//! reference \[12\] — restated for 0-based ascending `k`-subsets of
//! `{0, …, n-1}`: scan from the right for the first element that can still
//! be incremented, bump it, and reset everything to its right to a
//! contiguous run. As the paper notes (§VIII-B), this needs only
//! `2·k·log n` bits of state (previous and next combination) but is
//! inherently sequential.

/// Returns the lexicographically first `k`-combination: `[0, 1, …, k-1]`.
///
/// ```
/// assert_eq!(trigon_combin::first_combination(3), vec![0, 1, 2]);
/// assert!(trigon_combin::first_combination(0).is_empty());
/// ```
#[must_use]
pub fn first_combination(k: u32) -> Vec<u32> {
    (0..k).collect()
}

/// Advances `comb` to its lexicographic successor among ascending
/// `k`-subsets of `{0, …, n-1}`. Returns `false` (leaving `comb`
/// unchanged) when `comb` is already the last combination.
///
/// # Panics
///
/// Debug-asserts that `comb` is strictly ascending and within range; the
/// hot simulated-kernel loop relies on this being branch-light.
///
/// ```
/// let mut c = vec![0, 1, 2];
/// assert!(trigon_combin::next_combination(&mut c, 4));
/// assert_eq!(c, vec![0, 1, 3]);
/// assert!(trigon_combin::next_combination(&mut c, 4));
/// assert_eq!(c, vec![0, 2, 3]);
/// assert!(trigon_combin::next_combination(&mut c, 4));
/// assert_eq!(c, vec![1, 2, 3]);
/// assert!(!trigon_combin::next_combination(&mut c, 4));
/// ```
#[must_use]
pub fn next_combination(comb: &mut [u32], n: u32) -> bool {
    let k = comb.len();
    debug_assert!(comb.windows(2).all(|w| w[0] < w[1]), "not ascending");
    debug_assert!(comb.last().is_none_or(|&last| last < n), "out of range");
    if k == 0 {
        return false;
    }
    // Rightmost position i whose value can grow: comb[i] < n - k + i.
    let mut i = k;
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        if comb[i] < n - (k as u32 - i as u32) {
            break;
        }
    }
    comb[i] += 1;
    for j in i + 1..k {
        comb[j] = comb[j - 1] + 1;
    }
    true
}

/// Iterator over all `k`-combinations of `{0, …, n-1}` in lexicographic
/// order. Yields a borrowed view via [`LexCombinations::next_ref`] to keep
/// the loop allocation-free, or owned `Vec<u32>`s through the `Iterator`
/// impl for convenience.
#[derive(Debug, Clone)]
pub struct LexCombinations {
    comb: Vec<u32>,
    n: u32,
    started: bool,
    done: bool,
}

impl LexCombinations {
    /// Creates the stream. `k > n` yields nothing; `k == 0` yields exactly
    /// one empty combination (consistent with `C(n, 0) = 1`).
    #[must_use]
    pub fn new(n: u32, k: u32) -> Self {
        Self {
            comb: first_combination(k),
            n,
            started: false,
            done: k > n,
        }
    }

    /// Advances and returns a reference to the current combination, or
    /// `None` when exhausted. No allocation per step.
    pub fn next_ref(&mut self) -> Option<&[u32]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.comb);
        }
        if next_combination(&mut self.comb, self.n) {
            Some(&self.comb)
        } else {
            self.done = true;
            None
        }
    }
}

impl Iterator for LexCombinations {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_ref().map(<[u32]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binom::binom;

    #[test]
    fn enumerates_4_choose_2() {
        let all: Vec<Vec<u32>> = LexCombinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn count_matches_binomial() {
        for n in 0..10u32 {
            for k in 0..=n {
                let cnt = LexCombinations::new(n, k).count() as u128;
                assert_eq!(cnt, binom(u64::from(n), u64::from(k)), "C({n},{k})");
            }
        }
    }

    #[test]
    fn k_zero_yields_one_empty() {
        let all: Vec<Vec<u32>> = LexCombinations::new(5, 0).collect();
        assert_eq!(all, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn k_greater_than_n_yields_none() {
        assert_eq!(LexCombinations::new(2, 3).count(), 0);
    }

    #[test]
    fn strictly_increasing_lex_order() {
        let mut prev: Option<Vec<u32>> = None;
        for c in LexCombinations::new(8, 3) {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "ascending within");
            if let Some(p) = prev {
                assert!(p < c, "lex order violated: {p:?} !< {c:?}");
            }
            prev = Some(c);
        }
    }

    #[test]
    fn next_on_last_returns_false_and_preserves() {
        let mut c = vec![2, 3, 4];
        assert!(!next_combination(&mut c, 5));
        assert_eq!(c, vec![2, 3, 4]);
    }

    #[test]
    fn full_subset_single() {
        // k == n: exactly one combination.
        let all: Vec<Vec<u32>> = LexCombinations::new(3, 3).collect();
        assert_eq!(all, vec![vec![0, 1, 2]]);
    }
}
