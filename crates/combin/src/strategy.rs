//! Work-division strategies for combination testing (§VIII-A…D).
//!
//! The paper weighs four ways of feeding `C(n, k)` combination tests to
//! GPU threads; this module reproduces each with its storage-cost formula
//! and, for the per-thread splits, the resulting load distribution, so the
//! benchmark harness can show *why* strategy D (combinadics equal
//! division) wins.

use crate::binom::binom;

/// The four §VIII approaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// §VIII-A — generate every combination in preprocessing and store it.
    /// Storage: `C(n,k) · k · log₂(n)` bits; prohibitive.
    PrecomputedStore,
    /// §VIII-B — generate sequentially on the fly (Algorithm 154).
    /// Storage: `2 · k · log₂(n)` bits, but inherently serial.
    SequentialOnTheFly,
    /// §VIII-C — split by the combination's leading element(s); thread `t`
    /// owns combinations starting with node `t` (`lead = 1`) or with the
    /// ordered pair indexed by `t` (`lead = 2`). Unbalanced: early threads
    /// own far more combinations.
    LeadingElementSplit {
        /// Number of leading elements fixed per thread (1 or 2 in §VIII-C).
        lead: u32,
    },
    /// §VIII-D — divide the total count evenly; each thread unranks its
    /// starting combination via combinadics and advances sequentially.
    EqualDivision,
}

/// Ceiling of `log₂(n)` for `n ≥ 1`: bits needed to store one node id.
/// The paper's storage formulas use `log(n)` in this sense.
#[must_use]
pub fn node_id_bits(n: u64) -> u64 {
    debug_assert!(n >= 1);
    u64::from(64 - (n - 1).max(1).leading_zeros())
}

impl Strategy {
    /// Bits of storage the strategy needs, per the §VIII formulas.
    ///
    /// * A: `C(n,k) · k · log n` — the full table;
    /// * B: `2 · k · log n` — previous + next combination;
    /// * C: `threads · k · log n` — one live combination per thread;
    /// * D: `threads · k · log n` — likewise (plus the implicit index).
    ///
    /// Returns `None` when `C(n, k)` overflows `u128` (only possible for
    /// strategy A).
    #[must_use]
    pub fn storage_bits(&self, n: u64, k: u64, threads: u64) -> Option<u128> {
        let per_comb = u128::from(k) * u128::from(node_id_bits(n));
        match self {
            Strategy::PrecomputedStore => crate::binom::binom_checked(n, k)?.checked_mul(per_comb),
            Strategy::SequentialOnTheFly => Some(2 * per_comb),
            Strategy::LeadingElementSplit { .. } | Strategy::EqualDivision => {
                Some(u128::from(threads) * per_comb)
            }
        }
    }

    /// Number of threads the strategy can usefully occupy for a given
    /// `(n, k)` problem (`None` = unbounded / caller's choice).
    #[must_use]
    pub fn natural_parallelism(&self, n: u64, k: u64) -> Option<u128> {
        match self {
            Strategy::PrecomputedStore | Strategy::EqualDivision => None,
            Strategy::SequentialOnTheFly => Some(1),
            Strategy::LeadingElementSplit { lead } => {
                // A leading `lead`-prefix is feasible iff it can still be
                // extended to a full k-subset, i.e. its largest element is
                // below n - (k - lead): C(n - k + lead, lead) prefixes.
                // For lead = 1 this is the paper's n - k + 1 threads.
                let lead = u64::from(*lead).min(k);
                Some(binom(n - k + lead, lead))
            }
        }
    }
}

/// Half-open index range `[start, start + len)` of combination indices
/// assigned to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadRange {
    /// First combination index owned by the thread.
    pub start: u128,
    /// Number of combinations owned.
    pub len: u128,
}

/// Strategy D: splits `total` combination indices across `threads` so that
/// loads differ by at most one ("some threads might have to do a single
/// test more", §VIII-D). Threads `0 … total % threads - 1` receive the
/// extra unit. Empty ranges are returned for surplus threads.
///
/// ```
/// use trigon_combin::equal_division;
/// let r = equal_division(10, 4);
/// assert_eq!(r.iter().map(|r| r.len).collect::<Vec<_>>(), vec![3, 3, 2, 2]);
/// assert_eq!(r[2].start, 6);
/// ```
#[must_use]
pub fn equal_division(total: u128, threads: u64) -> Vec<ThreadRange> {
    assert!(threads > 0, "need at least one thread");
    let t = u128::from(threads);
    let base = total / t;
    let extra = total % t;
    let mut out = Vec::with_capacity(threads as usize);
    let mut start = 0u128;
    for i in 0..t {
        let len = base + u128::from(i < extra);
        out.push(ThreadRange { start, len });
        start += len;
    }
    out
}

/// Strategy C with `lead = 1`: combinations of `{0…n-1}` choose `k` are
/// split by first element; thread `t` (for `t ≤ n-k`) owns the
/// `C(n-1-t, k-1)` combinations starting with `t`. Returns the per-thread
/// loads, exposing the §VIII-C imbalance ("threads having id numbers in
/// the beginning doing more work").
///
/// ```
/// use trigon_combin::leading_element_loads;
/// // C(5,3): loads by first element 0,1,2 are C(4,2), C(3,2), C(2,2).
/// assert_eq!(leading_element_loads(5, 3), vec![6, 3, 1]);
/// ```
#[must_use]
pub fn leading_element_loads(n: u64, k: u64) -> Vec<u128> {
    if k == 0 || k > n {
        return Vec::new();
    }
    (0..=(n - k)).map(|t| binom(n - 1 - t, k - 1)).collect()
}

/// Load-balance summary of a per-thread work assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivisionStats {
    /// Number of threads with non-zero load counted; zero-load threads are
    /// included in the mean denominator.
    pub threads: usize,
    /// Largest per-thread load — proportional to the schedule makespan on
    /// identical lanes.
    pub max: u128,
    /// Smallest per-thread load.
    pub min: u128,
    /// Mean load.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; strategy C's value grows
    /// with `n`.
    pub imbalance: f64,
}

impl DivisionStats {
    /// Computes stats from raw per-thread loads. Empty input produces a
    /// zeroed summary.
    #[must_use]
    pub fn from_loads(loads: &[u128]) -> Self {
        if loads.is_empty() {
            return Self {
                threads: 0,
                max: 0,
                min: 0,
                mean: 0.0,
                imbalance: 1.0,
            };
        }
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        let sum: u128 = loads.iter().sum();
        let mean = sum as f64 / loads.len() as f64;
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        Self {
            threads: loads.len(),
            max,
            min,
            mean,
            imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_bits_values() {
        assert_eq!(node_id_bits(1), 1);
        assert_eq!(node_id_bits(2), 1);
        assert_eq!(node_id_bits(3), 2);
        assert_eq!(node_id_bits(256), 8);
        assert_eq!(node_id_bits(257), 9);
        assert_eq!(node_id_bits(100_000), 17);
    }

    #[test]
    fn storage_formulas_match_paper() {
        // §VIII-A: nCk · k · log n bits.
        let a = Strategy::PrecomputedStore.storage_bits(100, 3, 1).unwrap();
        assert_eq!(a, binom(100, 3) * 3 * 7);
        // §VIII-B: 2 · k · log n bits.
        let b = Strategy::SequentialOnTheFly
            .storage_bits(100, 3, 64)
            .unwrap();
        assert_eq!(b, 2 * 3 * 7);
        // C/D scale with thread count.
        let d = Strategy::EqualDivision.storage_bits(100, 3, 64).unwrap();
        assert_eq!(d, 64 * 3 * 7);
    }

    #[test]
    fn precomputed_storage_is_prohibitive_at_paper_scale() {
        // 100k nodes, k = 3: strategy A needs ~1 PB; must dwarf 4 GB VRAM.
        let bits = Strategy::PrecomputedStore
            .storage_bits(100_000, 3, 1)
            .unwrap();
        let c1060_bits: u128 = 4 * 1024 * 1024 * 1024 * 8;
        assert!(bits > 1000 * c1060_bits);
    }

    #[test]
    fn equal_division_covers_everything_contiguously() {
        for total in [0u128, 1, 7, 100, 1000] {
            for threads in [1u64, 3, 7, 32, 1024] {
                let ranges = equal_division(total, threads);
                assert_eq!(ranges.len() as u64, threads);
                let mut next = 0u128;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next += r.len;
                }
                assert_eq!(next, total, "total={total} threads={threads}");
                let max = ranges.iter().map(|r| r.len).max().unwrap();
                let min = ranges.iter().map(|r| r.len).min().unwrap();
                assert!(max - min <= 1, "loads differ by more than one");
            }
        }
    }

    #[test]
    fn leading_loads_sum_to_total() {
        for n in 3..30u64 {
            for k in 1..4u64 {
                let loads = leading_element_loads(n, k);
                let sum: u128 = loads.iter().sum();
                assert_eq!(sum, binom(n, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn leading_loads_strictly_decreasing() {
        let loads = leading_element_loads(50, 3);
        assert!(loads.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn strategy_c_much_worse_balanced_than_d() {
        let n = 1000u64;
        let k = 3u64;
        let c_stats = DivisionStats::from_loads(&leading_element_loads(n, k));
        let d_loads: Vec<u128> = equal_division(binom(n, k), n - k + 1)
            .iter()
            .map(|r| r.len)
            .collect();
        let d_stats = DivisionStats::from_loads(&d_loads);
        // First thread of strategy C owns C(n-1, k-1) ≈ k·mean combinations.
        assert!(c_stats.imbalance > 2.5, "imbalance = {}", c_stats.imbalance);
        assert!(d_stats.imbalance < 1.001);
    }

    #[test]
    fn natural_parallelism() {
        assert_eq!(
            Strategy::SequentialOnTheFly.natural_parallelism(100, 3),
            Some(1)
        );
        // lead = 1: n - k + 1 feasible leading elements.
        let p = Strategy::LeadingElementSplit { lead: 1 }
            .natural_parallelism(100, 3)
            .unwrap();
        assert_eq!(p, 98);
        assert_eq!(Strategy::EqualDivision.natural_parallelism(100, 3), None);
    }

    #[test]
    fn stats_on_empty_and_uniform() {
        let e = DivisionStats::from_loads(&[]);
        assert_eq!(e.threads, 0);
        let u = DivisionStats::from_loads(&[5, 5, 5, 5]);
        assert_eq!(u.max, 5);
        assert_eq!(u.min, 5);
        assert!((u.imbalance - 1.0).abs() < 1e-12);
    }
}
