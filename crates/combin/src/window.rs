//! Multi-level window combination spaces (§III).
//!
//! The paper's earlier shared-memory work counts connected subgraphs of
//! size `k` by "considering nodes only in k adjacent levels in the
//! BFS-tree". The combination space over such a window is: `k`-subsets of
//! the window's node union that contain **at least one node of the
//! window's first level** (so a candidate is attributed to exactly one
//! window — the one starting at its minimum level).
//!
//! Since window nodes are laid out first-level-first, those combinations
//! are exactly the *lex prefix* with `c₀ < a` (first-level size `a`),
//! which makes the space countable, unrankable and equally divisible with
//! the same §VIII-D machinery triangles use.

use crate::binom::binom;
use crate::combinadics::unrank_into;
use crate::lex::next_combination;
use crate::strategy::ThreadRange;

/// A `k`-subset space over a window of consecutive BFS levels whose node
/// union has `total` nodes, the first `first` of which form the window's
/// first level. Combinations must touch the first level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpace {
    /// First-level node count `a`.
    pub first: u32,
    /// Window union size `n = a + (rest)`.
    pub total: u32,
    /// Subset size.
    pub k: u32,
}

impl WindowSpace {
    /// Creates the space.
    ///
    /// # Panics
    ///
    /// Panics if `first > total`.
    #[must_use]
    pub fn new(first: u32, total: u32, k: u32) -> Self {
        assert!(first <= total, "first level larger than the window");
        Self { first, total, k }
    }

    /// Number of valid combinations:
    /// `C(total, k) − C(total − first, k)`.
    ///
    /// ```
    /// use trigon_combin::WindowSpace;
    /// let w = WindowSpace::new(2, 5, 3);
    /// assert_eq!(w.count(), 10 - 1); // C(5,3) − C(3,3)
    /// ```
    #[must_use]
    pub fn count(&self) -> u128 {
        if self.k == 0 {
            return 0;
        }
        binom(u64::from(self.total), u64::from(self.k))
            - binom(u64::from(self.total - self.first), u64::from(self.k))
    }

    /// Unranks index `idx` (plain lex unrank — valid combinations are a
    /// lex prefix).
    ///
    /// # Panics
    ///
    /// Panics if `idx ≥ count()`.
    pub fn unrank_into(&self, idx: u128, out: &mut Vec<u32>) {
        assert!(idx < self.count(), "window index out of range");
        unrank_into(idx, self.total, self.k, out);
        debug_assert!(out[0] < self.first);
    }

    /// Streaming cursor from index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx > count()`.
    #[must_use]
    pub fn cursor_at(&self, idx: u128) -> WindowCursor {
        let count = self.count();
        assert!(idx <= count, "window cursor index beyond space");
        if idx == count {
            return WindowCursor {
                space: *self,
                comb: Vec::new(),
                done: true,
            };
        }
        let mut comb = Vec::with_capacity(self.k as usize);
        unrank_into(idx, self.total, self.k, &mut comb);
        WindowCursor {
            space: *self,
            comb,
            done: false,
        }
    }

    /// Cursor from the first combination.
    #[must_use]
    pub fn cursor(&self) -> WindowCursor {
        self.cursor_at(0)
    }

    /// §VIII-D equal division of the space across `threads`.
    #[must_use]
    pub fn equal_division(&self, threads: u64) -> Vec<ThreadRange> {
        crate::strategy::equal_division(self.count(), threads)
    }
}

/// Streaming cursor over a [`WindowSpace`].
#[derive(Debug, Clone)]
pub struct WindowCursor {
    space: WindowSpace,
    comb: Vec<u32>,
    done: bool,
}

impl WindowCursor {
    /// Current combination (ascending window-local positions), or `None`
    /// when exhausted.
    #[must_use]
    pub fn current(&self) -> Option<&[u32]> {
        (!self.done).then_some(&self.comb)
    }

    /// Advances; `false` when leaving the constrained lex prefix or the
    /// lex order ends.
    pub fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        if next_combination(&mut self.comb, self.space.total) && self.comb[0] < self.space.first {
            true
        } else {
            self.done = false;
            self.done = true;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::LexCombinations;

    #[test]
    fn count_matches_enumeration() {
        for first in 0..6u32 {
            for rest in 0..6u32 {
                let total = first + rest;
                for k in 1..5u32 {
                    let w = WindowSpace::new(first, total, k);
                    let brute = LexCombinations::new(total, k)
                        .filter(|c| c[0] < first)
                        .count() as u128;
                    assert_eq!(w.count(), brute, "first={first} total={total} k={k}");
                }
            }
        }
    }

    #[test]
    fn cursor_enumerates_exactly_the_prefix() {
        let w = WindowSpace::new(3, 8, 3);
        let mut cur = w.cursor();
        let mut got = Vec::new();
        while let Some(c) = cur.current() {
            got.push(c.to_vec());
            if !cur.advance() {
                break;
            }
        }
        let want: Vec<Vec<u32>> = LexCombinations::new(8, 3).filter(|c| c[0] < 3).collect();
        assert_eq!(got, want);
        assert_eq!(got.len() as u128, w.count());
    }

    #[test]
    fn cursor_at_matches_order() {
        let w = WindowSpace::new(2, 7, 3);
        let all: Vec<Vec<u32>> = LexCombinations::new(7, 3).filter(|c| c[0] < 2).collect();
        for (i, want) in all.iter().enumerate() {
            let cur = w.cursor_at(i as u128);
            assert_eq!(cur.current().unwrap(), want.as_slice(), "idx {i}");
        }
        assert!(w.cursor_at(w.count()).current().is_none());
    }

    #[test]
    fn equal_division_tiles() {
        let w = WindowSpace::new(4, 12, 3);
        let ranges = w.equal_division(7);
        let mut next = 0u128;
        for r in &ranges {
            assert_eq!(r.start, next);
            next += r.len;
        }
        assert_eq!(next, w.count());
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(WindowSpace::new(0, 5, 3).count(), 0);
        assert_eq!(WindowSpace::new(5, 5, 3).count(), crate::binom(5, 3));
        assert_eq!(WindowSpace::new(2, 5, 0).count(), 0);
        assert_eq!(WindowSpace::new(2, 2, 3).count(), 0);
        assert!(WindowSpace::new(0, 5, 3).cursor().current().is_none());
    }

    #[test]
    #[should_panic(expected = "larger than the window")]
    fn rejects_bad_shape() {
        let _ = WindowSpace::new(6, 5, 2);
    }
}
