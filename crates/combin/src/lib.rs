//! # trigon-combin
//!
//! Combination-generation substrate for the `trigon` project, reproducing
//! §VIII ("Generating Combinations for Testing in Graphs") of
//! *On Analyzing Large Graphs Using GPUs* (Chatterjee, Radhakrishnan,
//! Antonio — IPDPSW 2013).
//!
//! The paper tests graph properties (triangles, cliques, independent sets,
//! connected subgraphs) over combinations of `k` nodes drawn from `n`. This
//! crate provides everything the rest of the system needs to enumerate,
//! rank, unrank and *divide* those combination spaces across simulated GPU
//! threads:
//!
//! * [`mod@binom`] — overflow-checked binomial coefficients and cached tables;
//! * [`lex`] — lexicographic first/successor generation
//!   (Mifsud, *CACM* Algorithm 154, the paper's reference \[12\]);
//! * [`combinadics`] — rank/unrank between lexicographic indices and
//!   combinations (Buckles & Lybanon, *TOMS* Algorithm 515, reference \[3\]);
//! * [`strategy`] — the four work-division strategies of §VIII-A…D with the
//!   paper's storage-cost formulas and load-balance accounting;
//! * [`cross`] — constrained two-level combination spaces used by
//!   Algorithm 2 (`GenNxtComb(firstLvl | bothLvls | secondLvl)`);
//! * [`window`] — multi-level window spaces for the §III `k`-adjacent-
//!   levels extensions (connected subgraphs of size `k`).
//!
//! All index arithmetic is done in `u128` so that spaces as large as
//! `C(300_000, 4)` are handled without overflow.

#![deny(missing_docs)]

pub mod binom;
pub mod combinadics;
pub mod cross;
pub mod lex;
pub mod strategy;
pub mod window;

pub use binom::{binom, binom_checked, BinomTable};
pub use combinadics::{rank, unrank, unrank_into};
pub use cross::{CrossMode, TwoLevelSpace};
pub use lex::{first_combination, next_combination, LexCombinations};
pub use strategy::{equal_division, leading_element_loads, DivisionStats, Strategy, ThreadRange};
pub use window::{WindowCursor, WindowSpace};
