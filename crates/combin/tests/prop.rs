//! Property-based tests for the combination substrate.

use proptest::prelude::*;
use trigon_combin::{
    binom, equal_division, next_combination, rank, unrank, CrossMode, LexCombinations,
    TwoLevelSpace,
};

proptest! {
    /// unrank ∘ rank is the identity on arbitrary combinations.
    #[test]
    fn rank_unrank_identity(n in 1u32..200, seed in any::<u64>()) {
        let k = 1 + (seed % 4) as u32;
        prop_assume!(k <= n);
        // Derive a pseudo-random combination from the seed deterministically.
        let total = binom(u64::from(n), u64::from(k));
        let idx = u128::from(seed) % total;
        let c = unrank(idx, n, k);
        prop_assert_eq!(rank(&c, n), idx);
        prop_assert!(c.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(*c.last().unwrap() < n);
    }

    /// The lex successor increases rank by exactly one.
    #[test]
    fn successor_increments_rank(n in 2u32..60, raw_idx in any::<u64>()) {
        let k = 2u32.min(n);
        let total = binom(u64::from(n), u64::from(k));
        let idx = u128::from(raw_idx) % total;
        let mut c = unrank(idx, n, k);
        let advanced = next_combination(&mut c, n);
        if idx + 1 < total {
            prop_assert!(advanced);
            prop_assert_eq!(rank(&c, n), idx + 1);
        } else {
            prop_assert!(!advanced);
        }
    }

    /// Equal division always tiles [0, total) with ±1 balanced loads.
    #[test]
    fn equal_division_tiles(total in 0u64..1_000_000, threads in 1u64..4096) {
        let ranges = equal_division(u128::from(total), threads);
        let mut next = 0u128;
        let mut max = 0u128;
        let mut min = u128::MAX;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            next += r.len;
            max = max.max(r.len);
            min = min.min(r.len);
        }
        prop_assert_eq!(next, u128::from(total));
        prop_assert!(max - min <= 1);
    }

    /// The three disjoint cross modes tile the union space, and every
    /// cursor_at agrees with sequential enumeration order.
    #[test]
    fn cross_modes_consistent(a in 0u32..10, b in 0u32..10, k in 1u32..4) {
        let s = TwoLevelSpace::new(a, b, k);
        let total: u128 = [CrossMode::FirstOnly, CrossMode::Mixed, CrossMode::SecondOnly]
            .iter()
            .map(|&m| s.count(m))
            .sum();
        prop_assert_eq!(total, s.total());

        for mode in [CrossMode::FirstOnly, CrossMode::Mixed, CrossMode::SecondOnly] {
            let all: Vec<Vec<u32>> = s.cursor(mode).into_iter_owned().collect();
            prop_assert_eq!(all.len() as u128, s.count(mode));
            // Random-access cursors agree with streaming enumeration.
            if let Some(mid) = all.len().checked_sub(1) {
                let cur = s.cursor_at(mode, mid as u128);
                prop_assert_eq!(cur.current().unwrap(), all[mid].as_slice());
            }
        }
    }

    /// Lex enumeration count always equals the binomial coefficient.
    #[test]
    fn lex_count_matches_binom(n in 0u32..18, k in 0u32..6) {
        let cnt = LexCombinations::new(n, k).count() as u128;
        prop_assert_eq!(cnt, binom(u64::from(n), u64::from(k)));
    }
}
