//! Social-network analysis: the paper's Fig. 2 motivation — "friends of
//! friends tend to be friends" — on a synthetic online social network.
//!
//! Computes clustering coefficients and transitivity from triangle
//! counts, and produces friend suggestions by ranking open wedges
//! (pairs with many common friends but no edge).
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use std::collections::HashMap;
use trigon::graph::{gen, triangles};
use trigon::{Analysis, Method};

fn main() {
    // A small-world OSN: 2,000 users, 12 friends each on the lattice,
    // 10 % rewired long-range.
    let g = gen::watts_strogatz(2_000, 12, 0.10, 11);
    println!("social network: {} users, {} friendships", g.n(), g.m());

    let report = Analysis::new(&g)
        .method(Method::CpuFast)
        .run()
        .expect("count");
    println!("triangles (closed friend trios): {}", report.count);

    let t = triangles::transitivity(&g);
    println!("transitivity: {t:.3} (probability a wedge is closed)");

    let cc = triangles::clustering_coefficients(&g);
    let mean_cc = cc.iter().sum::<f64>() / cc.len() as f64;
    println!("mean clustering coefficient: {mean_cc:.3}");

    // Fig. 2: friend suggestion. For each open wedge u–w–v with no u–v
    // edge, credit the pair (u, v) once per common friend; suggest the
    // highest-scoring pairs.
    let mut scores: HashMap<(u32, u32), u32> = HashMap::new();
    for w in 0..g.n() {
        let nb = g.neighbors(w);
        for (i, &u) in nb.iter().enumerate() {
            for &v in &nb[i + 1..] {
                if !g.has_edge(u, v) {
                    *scores.entry((u, v)).or_default() += 1;
                }
            }
        }
    }
    let mut ranked: Vec<((u32, u32), u32)> = scores.into_iter().collect();
    ranked.sort_unstable_by_key(|&((u, v), s)| (std::cmp::Reverse(s), u, v));
    println!("\ntop friend suggestions (common friends, not yet connected):");
    for ((u, v), s) in ranked.iter().take(5) {
        println!("  user {u} - user {v}: {s} mutual friends");
    }

    // Sanity: suggestions really are open wedges.
    for ((u, v), _) in ranked.iter().take(5) {
        assert!(!g.has_edge(*u, *v));
    }
}
