//! Quickstart: count triangles on the CPU and on the simulated GPU
//! through the one [`trigon::Analysis`] builder.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use trigon::gpu_sim::DeviceSpec;
use trigon::graph::gen;
use trigon::{Analysis, Method};

fn main() {
    // A seeded random graph: 500 vertices, mean degree 16.
    let g = gen::gnp(500, 16.0 / 500.0, 7);
    println!(
        "graph: n = {}, m = {}, density = {:.4}",
        g.n(),
        g.m(),
        g.density()
    );

    // 1. The paper's CPU baseline (Algorithm 2, single thread).
    let cpu = Analysis::new(&g)
        .method(Method::CpuExhaustive)
        .run()
        .expect("cpu");
    println!(
        "CPU  : {} triangles from {} combination tests — modeled {:.3} s on a 2.27 GHz Xeon",
        cpu.count, cpu.tests, cpu.modeled_s
    );

    // 2. The naive GPU port (monolithic layout, round-robin dispatch).
    let naive = Analysis::new(&g)
        .method(Method::GpuNaive)
        .device(DeviceSpec::c1060())
        .run()
        .expect("naive gpu");
    let nd = naive.gpu.as_ref().unwrap();
    println!(
        "GPU naive    : {} triangles — modeled {:.3} s ({} transactions, camping {:.2})",
        naive.count, naive.modeled_s, nd.transactions, nd.camping_factor
    );

    // 3. With the paper's §IX-§X primitives: per-ALS partition-aligned
    //    layout + LPT chunk scheduling.
    let opt = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .device(DeviceSpec::c1060())
        .run()
        .expect("optimized gpu");
    let od = opt.gpu.as_ref().unwrap();
    println!(
        "GPU optimized: {} triangles — modeled {:.3} s ({} transactions, camping {:.2})",
        opt.count, opt.modeled_s, od.transactions, od.camping_factor
    );

    assert_eq!(cpu.count, naive.count);
    assert_eq!(cpu.count, opt.count);
    println!(
        "speedup vs CPU: naive {:.1}x, optimized {:.1}x; primitives gain {:.1} %",
        cpu.modeled_s / naive.modeled_s,
        cpu.modeled_s / opt.modeled_s,
        100.0 * (naive.modeled_s - opt.modeled_s) / naive.modeled_s
    );
}
