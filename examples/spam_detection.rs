//! Spam detection via local triangle counts — the §VII application the
//! paper cites from Becchetti et al.: spam hosts link widely but their
//! neighborhoods do not interconnect, so a high degree combined with a
//! low local triangle count is suspicious.
//!
//! We plant "spammers" into a community network (they attach to many
//! random users across communities) and recover them by ranking users by
//! local clustering.
//!
//! ```text
//! cargo run --release --example spam_detection
//! ```

use trigon::graph::rng::Xoshiro256pp;
use trigon::graph::{gen, triangles, Graph};

fn main() {
    // Honest users: 1,500 users in tight communities.
    let base = gen::community_ring(1_500, 100, 0.25, 3, 3);
    let spammers = 10u32;
    let links_per_spammer = 60usize;
    let n = base.n() + spammers;

    // Spammers link to random users everywhere (no community structure).
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let mut edges: Vec<(u32, u32)> = base.edges().collect();
    for s in 0..spammers {
        let sid = base.n() + s;
        for t in rng.sample_distinct(u64::from(base.n()), links_per_spammer) {
            edges.push((sid, t as u32));
        }
    }
    let g = Graph::from_edges(n, &edges).expect("graph");
    println!(
        "network: {} users ({} planted spammers), {} links",
        g.n(),
        spammers,
        g.m()
    );

    // Rank by local clustering coefficient among high-degree users.
    let local = triangles::local_counts(&g);
    let cc = triangles::clustering_coefficients(&g);
    let mut suspects: Vec<u32> = (0..g.n()).filter(|&v| g.degree(v) >= 30).collect();
    suspects.sort_unstable_by(|&a, &b| {
        cc[a as usize]
            .partial_cmp(&cc[b as usize])
            .unwrap()
            .then(a.cmp(&b))
    });

    println!("\nmost suspicious high-degree users (low clustering):");
    let mut caught = 0u32;
    for &v in suspects.iter().take(spammers as usize) {
        let is_spam = v >= base.n();
        caught += u32::from(is_spam);
        println!(
            "  user {v:>5}: degree {:>3}, triangles {:>4}, clustering {:.4} {}",
            g.degree(v),
            local[v as usize],
            cc[v as usize],
            if is_spam { "<- planted spammer" } else { "" }
        );
    }
    println!(
        "\nprecision@{spammers}: {:.0} % of flagged users are planted spammers",
        100.0 * f64::from(caught) / f64::from(spammers)
    );
    assert!(
        caught >= spammers * 7 / 10,
        "detector should catch most spammers"
    );
}
