//! Out-of-core triangle counting (§XII future work): the graph lives in
//! a binary edge file on disk; vertex-range partitioning bounds RAM at
//! the price of extra sequential scans.
//!
//! ```text
//! cargo run --release --example external_memory
//! ```

use trigon::graph::external::{count_triangles_external, ExternalEdgeList};
use trigon::graph::{gen, triangles};

fn main() {
    let g = gen::barabasi_albert(5_000, 6, 23);
    let expect = triangles::count_edge_iterator(&g);
    println!(
        "graph: n = {}, m = {} — {} triangles (in-memory reference)",
        g.n(),
        g.m(),
        expect
    );

    let dir = std::env::temp_dir().join("trigon_external_example");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("graph.bin");
    let ext = ExternalEdgeList::create(&g, &path).expect("write edge file");
    println!(
        "wrote {} ({} edges, {} bytes)\n",
        path.display(),
        ext.m(),
        ext.m() * 16
    );

    println!(
        "{:>4} {:>10} {:>16} {:>18} {:>14}",
        "p", "triples", "edges streamed", "peak edges in RAM", "triangles"
    );
    for p in [1u32, 2, 4, 8] {
        let s = count_triangles_external(&ext, p).expect("external count");
        assert_eq!(s.triangles, expect, "count must be exact at any p");
        println!(
            "{p:>4} {:>10} {:>16} {:>18} {:>14}",
            s.triples, s.edges_streamed, s.peak_edges_in_memory, s.triangles
        );
    }
    println!(
        "\nRAM high-water mark falls with p while the count stays exact — the\n\
         §XII trade: more sequential disk passes for less resident memory."
    );
}
