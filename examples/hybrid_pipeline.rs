//! The §V hybrid shared/global pipeline end to end: Algorithm 1 splits
//! the graph; ALS inside shared-memory-resident chunks run at bank
//! latency, boundary and oversize ALS read global memory; LPT schedules
//! everything across SMs; and the paper's Eq. 6 naive pipeline is
//! evaluated for contrast.
//!
//! ```text
//! cargo run --release --example hybrid_pipeline
//! ```

use trigon::core::gpu_exec::GpuConfig;
use trigon::core::hybrid::{run_hybrid, HybridConfig};
use trigon::core::pipeline::{count_triangles, CountMethod};
use trigon::gpu_sim::DeviceSpec;
use trigon::graph::gen;

fn main() {
    // A deep community graph: the regime the splitting technique targets.
    let g = gen::community_ring(5_000, 150, 0.25, 3, 13);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    for device in [DeviceSpec::c1060(), DeviceSpec::c2050()] {
        let name = device.name;
        let h = run_hybrid(&g, &HybridConfig::new(device.clone()));
        println!("\n== {name} (shared budget {} KB) ==", device.shared_mem_bytes / 1024);
        println!(
            "chunks: {} ({} shared, {} global)",
            h.split.chunks.len(),
            h.split.shared_count(),
            h.split.global_count()
        );
        println!(
            "ALS placement: {} shared-tier, {} global-tier",
            h.shared_als, h.global_als
        );
        println!("triangles: {}", h.triangles);
        println!("kernel (LPT schedule):     {:>8.4} s", h.kernel_s);
        println!("kernel (Eq. 6 naive):      {:>8.4} s", h.eq6_s);

        // Compare against running everything from global memory.
        let global =
            count_triangles(&g, CountMethod::GpuSim(GpuConfig::optimized(device).sampled()))
                .expect("global run");
        println!(
            "kernel (all-global):       {:>8.4} s",
            global.gpu.as_ref().unwrap().kernel_s
        );
        assert_eq!(h.triangles, global.triangles);
    }
    println!(
        "\nShared staging + LPT beats both alternatives — \"an intelligent scheduling\n\
         of the computations on the streaming multiprocessors\" (SS V)."
    );
}
