//! The §V hybrid shared/global pipeline end to end: Algorithm 1 splits
//! the graph; ALS inside shared-memory-resident chunks run at bank
//! latency, boundary and oversize ALS read global memory; LPT schedules
//! everything across SMs; and the paper's Eq. 6 naive pipeline is
//! evaluated for contrast.
//!
//! ```text
//! cargo run --release --example hybrid_pipeline
//! ```

use trigon::gpu_sim::DeviceSpec;
use trigon::graph::gen;
use trigon::{Analysis, Method};

fn main() {
    // A deep community graph: the regime the splitting technique targets.
    let g = gen::community_ring(5_000, 150, 0.25, 3, 13);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    for device in [DeviceSpec::c1060(), DeviceSpec::c2050()] {
        let name = device.name;
        let shared_kb = device.shared_mem_bytes / 1024;
        let r = Analysis::new(&g)
            .method(Method::Hybrid)
            .device(device.clone())
            .run()
            .expect("hybrid run");
        let h = r.hybrid.as_ref().expect("hybrid section");
        let eq6 = r.eq6.as_ref().expect("eq6 section");
        println!("\n== {name} (shared budget {shared_kb} KB) ==");
        println!(
            "chunks: {} ({} oversize for shared memory)",
            h.chunks, h.oversize_chunks
        );
        println!(
            "ALS placement: {} shared-tier, {} global-tier",
            h.shared_als, h.global_als
        );
        println!("triangles: {}", r.count);
        println!("kernel (LPT schedule):     {:>8.4} s", eq6.simulated_s);
        println!("kernel (Eq. 6 naive):      {:>8.4} s", eq6.predicted_s);

        // Compare against running everything from global memory.
        let global = Analysis::new(&g)
            .method(Method::GpuSampled)
            .device(device)
            .run()
            .expect("global run");
        println!(
            "kernel (all-global):       {:>8.4} s",
            global.gpu.as_ref().unwrap().kernel_s
        );
        assert_eq!(r.count, global.count);
    }
    println!(
        "\nShared staging + LPT beats both alternatives — \"an intelligent scheduling\n\
         of the computations on the streaming multiprocessors\" (SS V)."
    );
}
