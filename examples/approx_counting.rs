//! Exact vs approximate triangle counting: the Algorithm 2 pipeline
//! against DOULION (Tsourakakis et al., KDD '09 — the paper's reference
//! \[16\] for "counting triangles in massive graphs with a coin").
//!
//! Shows the accuracy/work trade-off: DOULION touches only `p·m` edges
//! but returns an estimate; the exact pipeline tests every candidate
//! combination once.
//!
//! ```text
//! cargo run --release --example approx_counting
//! ```

use trigon::graph::{approx, gen};
use trigon::{Analysis, Method};

fn main() {
    let g = gen::community_ring(8_000, 200, 0.25, 4, 17);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    let exact = Analysis::new(&g)
        .method(Method::CpuFast)
        .run()
        .expect("exact");
    println!(
        "exact (Algorithm 2): {} triangles  [{} combination tests accounted]",
        exact.count, exact.tests
    );

    println!("\nDOULION estimates (5-run mean per p):");
    println!(
        "{:>6} {:>14} {:>12} {:>10}",
        "p", "estimate", "rel.err %", "edges kept"
    );
    for p in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let mean = approx::doulion_mean(&g, p, 7, 5);
        let one = approx::doulion(&g, p, 7);
        let rel = 100.0 * (mean - exact.count as f64).abs() / exact.count as f64;
        println!("{p:>6} {mean:>14.0} {rel:>12.2} {:>10}", one.kept_edges);
    }

    // The estimator is exact at p = 1 by construction.
    let full = approx::doulion(&g, 1.0, 1);
    assert_eq!(full.sparsified_triangles, exact.count);
    println!("\np = 1.0 recovers the exact count, as expected.");
}
