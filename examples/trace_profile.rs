//! Trace profiling: run the optimized GPU pipeline with span tracing on,
//! print the per-SM ASCII timeline, and export a Chrome trace-event file
//! for chrome://tracing or <https://ui.perfetto.dev>.
//!
//! ```text
//! cargo run --release --example trace_profile
//! ```
//!
//! The host timeline is driven by a [`ManualClock`] here, so the printed
//! host numbers are deterministic — handy for docs and tests. Drop the
//! `.tracer(...)` call (or use `Tracer::new()`) to trace with real
//! wall-clock time instead.

use std::sync::Arc;
use trigon::gpu_sim::{render_sm_timeline, DeviceSpec};
use trigon::graph::gen;
use trigon::{Analysis, Level, ManualClock, Method, Tracer};

fn main() {
    let g = gen::gnp(800, 16.0 / 800.0, 7);

    // A manual clock makes the host axis deterministic; the device axis
    // is always deterministic (simulated cycles).
    let clock = ManualClock::new();
    let tracer = Tracer::with_clock(Level::Trace, Arc::new(clock));

    let report = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .device(DeviceSpec::c1060())
        .telemetry(Level::Trace)
        .tracer(tracer)
        .run()
        .expect("gpu run");

    let trace = report.trace.as_ref().expect("trace summary");
    println!(
        "{} spans, {} instants recorded across host + device",
        trace.spans, trace.instants
    );
    if let Some(d) = &trace.device {
        println!(
            "device: {} SMs active, {} kernel/PCIe spans, makespan {} cycles, mean busy {:.0}%",
            d.sms,
            d.spans,
            d.makespan_cycles,
            d.mean_busy_frac * 100.0
        );
    }
    for h in &trace.histograms {
        println!(
            "histogram {:<20} n={:<6} p50={:<10.1} p90={:<10.1} p99={:.1}",
            h.name, h.count, h.p50, h.p90, h.p99
        );
    }

    println!("\nper-SM timeline (simulated cycles):");
    print!("{}", render_sm_timeline(&report.tracer.sm_occupancy(64)));

    let path = std::env::temp_dir().join("trigon_trace.json");
    std::fs::write(&path, report.tracer.to_chrome_trace().to_string_pretty()).expect("write trace");
    println!(
        "\nChrome trace written to {} — open it in chrome://tracing or ui.perfetto.dev",
        path.display()
    );
}
