//! The two §IX–§X memory primitives, visualized: coalescing transaction
//! counts per compute capability (Table III) and partition camping
//! histograms (Figs. 6–7) for the actual triangle-counting workload
//! under both data layouts.
//!
//! ```text
//! cargo run --release --example memory_primitives
//! ```

use trigon::core::gpu_exec::GpuConfig;
use trigon::gpu_sim::coalesce::{nonsequential_pattern, sequential_pattern};
use trigon::gpu_sim::occupancy::{occupancy, KernelResources};
use trigon::gpu_sim::{warp_transactions, ComputeCapability, DeviceSpec};
use trigon::graph::gen;
use trigon::{Analysis, Method};

fn main() {
    println!("== Table III: one warp reads 128 B as 4 B words ==");
    println!("{:<6} {:>12} {:>16}", "CC", "sequential", "non-sequential");
    for cc in ComputeCapability::all() {
        let s = warp_transactions(cc, &sequential_pattern(0, 32, 4), 4).transactions;
        let n = warp_transactions(cc, &nonsequential_pattern(0, 32, 4), 4).transactions;
        println!("{:<6} {s:>12} {n:>16}", cc.to_string());
    }

    println!("\n== Occupancy of the triangle kernel (128 threads, 16 regs, no shared) ==");
    let res = KernelResources {
        threads_per_block: 128,
        regs_per_thread: 16,
        shared_bytes_per_block: 0,
    };
    for d in DeviceSpec::table1() {
        let o = occupancy(&d, &res);
        println!(
            "  {:<6} {} blocks/SM, {} warps/SM ({:.0} % of capacity, limited by {})",
            d.name,
            o.blocks_per_sm,
            o.warps_per_sm,
            100.0 * o.fraction,
            o.limiter
        );
    }

    println!("\n== Partition pressure of the real workload (n = 800, deg 16) ==");
    let g = gen::gnp(800, 16.0 / 800.0, 5);
    for (label, cfg) in [
        (
            "naive monolithic layout",
            GpuConfig::naive(DeviceSpec::c1060()),
        ),
        (
            "per-ALS aligned layout",
            GpuConfig::optimized(DeviceSpec::c1060()),
        ),
    ] {
        let r = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .gpu_config(cfg)
            .run()
            .expect("run");
        let d = r.gpu.as_ref().unwrap();
        println!(
            "  {label:<26} kernel {:.3} s, camping factor {:.2}, {} transactions",
            d.kernel_s, d.camping_factor, d.transactions
        );
    }
    println!("\n(run `trigon camping` for the Fig. 6/7 histograms)");
}
