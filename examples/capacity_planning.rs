//! Capacity planning (§IV): which device/storage combination fits your
//! graph, and how Algorithm 1 splits it when shared memory cannot.
//!
//! ```text
//! cargo run --release --example capacity_planning [n]
//! ```

use trigon::core::capacity::{self, StorageModel};
use trigon::core::split::{split_graph, SplitConfig};
use trigon::core::timemodel::eq6_total_time;
use trigon::gpu_sim::DeviceSpec;
use trigon::graph::gen;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);

    println!("== Table II: largest graph per device and storage model ==");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "Model", "Sh AdjMat", "Sh S-UTM", "Gl AdjMat", "Gl S-UTM"
    );
    for r in capacity::table2(&DeviceSpec::table1()) {
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12}",
            r.device, r.shared_adj, r.shared_sutm, r.global_adj, r.global_sutm
        );
    }

    println!("\n== placement of an n = {n} graph ==");
    for d in DeviceSpec::table1() {
        for (mname, model) in [
            ("AdjMat", StorageModel::AdjacencyMatrix),
            ("S-UTM", StorageModel::SUtm),
        ] {
            let shared = capacity::fits(u64::from(n), d.shared_mem_bits(), model);
            let global = capacity::fits(u64::from(n), d.global_mem_bits(), model);
            println!(
                "  {:<6} {:<7} shared: {:<5} global: {}",
                d.name,
                mname,
                if shared { "yes" } else { "no" },
                if global { "yes" } else { "no" }
            );
        }
    }

    // Algorithm 1 in action on a deep community graph.
    let g = gen::community_ring(n, 200, 0.2, 3, 5);
    let spec = DeviceSpec::c1060();
    let cfg = SplitConfig::for_device(&spec);
    let r = split_graph(&g, &cfg);
    println!(
        "\n== Algorithm 1 split on the C1060 (shared budget {} bits) ==",
        cfg.shared_mem_bits
    );
    println!(
        "chunks: {} total, {} fit shared memory, {} must stay in global memory",
        r.chunks.len(),
        r.shared_count(),
        r.global_count()
    );
    for c in r.chunks.iter().take(8) {
        println!(
            "  chunk: component {} levels {:>2}..{:<2} nodes {:>5} size {:>8} bits -> {}",
            c.component,
            c.levels.0,
            c.levels.1,
            c.nodes.len(),
            c.size_bits,
            if c.fits_shared { "shared" } else { "GLOBAL" }
        );
    }
    if r.chunks.len() > 8 {
        println!("  ... {} more chunks", r.chunks.len() - 8);
    }

    // Eq. 6: what the placement costs under the paper's pipeline model.
    let (tau_s, tau_g) = (1.0, 8.0); // illustrative per-chunk times
    let t = eq6_total_time(
        r.shared_count() as u64,
        r.global_count() as u64,
        tau_s,
        tau_g,
        spec.sm_count,
    );
    println!(
        "\nEq. 6 pipeline time with tau_s = {tau_s}, tau_g = {tau_g}: {t:.1} units \
         (mu rounds of shared work + serialized global chunks)"
    );
}
