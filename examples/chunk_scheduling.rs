//! Chunk scheduling (§VI): assigning Algorithm 1 chunks to streaming
//! multiprocessors is makespan scheduling — NP-hard, approximated well by
//! LPT. This example splits a graph, schedules the chunk jobs under four
//! policies and compares makespans against the lower bound and (for small
//! instances) the exact optimum.
//!
//! ```text
//! cargo run --release --example chunk_scheduling
//! ```

use trigon::core::split::{split_graph, SplitConfig};
use trigon::gpu_sim::DeviceSpec;
use trigon::graph::gen;
use trigon::sched;

fn main() {
    let g = gen::community_ring(6_000, 150, 0.2, 3, 9);
    let spec = DeviceSpec::c1060();
    let cfg = SplitConfig::for_device(&spec);
    let split = split_graph(&g, &cfg);
    let jobs = split.job_sizes();
    println!(
        "graph: n = {}, m = {} -> {} chunks ({} shared, {} global)",
        g.n(),
        g.m(),
        jobs.len(),
        split.shared_count(),
        split.global_count()
    );

    let machines = spec.sm_count;
    let lb = sched::lower_bound(&jobs, machines);
    println!(
        "\nscheduling {} chunk jobs on {} SMs (lower bound {lb}):",
        jobs.len(),
        machines
    );
    for (name, s) in [
        ("round-robin", sched::round_robin(&jobs, machines)),
        ("list", sched::list_schedule(&jobs, machines)),
        ("LPT", sched::lpt(&jobs, machines)),
    ] {
        println!(
            "  {:<12} makespan {:>10}  (x{:.3} of LB, imbalance {:.3})",
            name,
            s.makespan(),
            s.makespan() as f64 / lb as f64,
            s.imbalance()
        );
    }

    // Exact optimum on a truncated instance (branch and bound is
    // exponential — the §VI NP-hardness in practice).
    let small: Vec<u64> = jobs.iter().copied().take(14).collect();
    if !small.is_empty() {
        let opt = sched::exact(&small, 4);
        let lpt = sched::lpt(&small, 4);
        println!(
            "\nfirst {} jobs on 4 machines: exact {} vs LPT {} ({}x)",
            small.len(),
            opt.makespan(),
            lpt.makespan(),
            lpt.makespan() as f64 / opt.makespan() as f64
        );
    }
}
