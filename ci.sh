#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full workspace test suite.
#
#   ./ci.sh          # everything
#   ./ci.sh quick    # skip the slow property-test suite
#
# trigon-bench is excluded from the test step (its Criterion benches are
# exercised by `cargo bench` instead).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc -D warnings =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test =="
if [ "${1:-}" = "quick" ]; then
    cargo test --workspace --exclude trigon-bench -- --skip prop_
else
    cargo test --workspace --exclude trigon-bench
fi

echo "== trace export smoke test =="
trace_out="$(mktemp -d)/trace.json"
cargo run --release --quiet -- count --gen gnp --n 500 --method gpu-opt \
    --trace "$trace_out" --verbose > /dev/null
grep -q '"traceEvents"' "$trace_out"
grep -q '"SM 0"' "$trace_out"
rm -f "$trace_out"

echo "== repro perf smoke test (quick) =="
# Measures real wall-clock of the counting strategies, asserts parallel
# counts are bit-identical to the serial ones (inside run_perf), and
# enforces the committed normalized regression envelope: >25 % slowdown
# of the 1-thread fig10 run vs crates/bench/baselines/perf_baseline.json
# fails. Export TRIGON_PERF_SKIP_REGRESSION=1 to measure without gating
# (e.g. on a heavily loaded machine).
cargo run --release --quiet -p trigon-bench --bin repro -- perf --quick \
    --baseline crates/bench/baselines/perf_baseline.json
test -s bench_out/BENCH_perf.json
for key in '"schema_version": 1' '"fig10"' '"fig11"' '"overhead"' '"thread_sweep"'; do
    grep -q "$key" bench_out/BENCH_perf.json
done

echo "CI OK"
