#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full workspace test suite, and
# smoke tests of the trace export, fault recovery, fleet, cluster,
# workload, adjacency-intersection, serving-daemon, ablation, perf, and
# performance-counter profile repro paths.
#
#   ./ci.sh            # everything
#   ./ci.sh quick      # everything, but skip the slow property-test suite
#   ./ci.sh <stage>    # one stage: fmt | clippy | doc | test | trace | faults | fleet | cluster | workloads | intersect | serve | ablation | perf | profile
#
# Each stage's wall-clock time is reported in a summary at the end.
#
# trigon-bench is excluded from the test step (its Criterion benches are
# exercised by `cargo bench` instead).
set -euo pipefail
cd "$(dirname "$0")"

# Scratch space for smoke-test artifacts, removed on every exit path
# (the old inline `mktemp -d` leaked its directory on failure).
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

mode="${1:-all}"
timing_names=()
timing_secs=()

# run_stage NAME FUNC — runs FUNC when selected, recording wall-clock.
run_stage() {
    local name="$1" func="$2"
    case "$mode" in
        all | quick) ;;
        "$name") ;;
        *) return 0 ;;
    esac
    echo "== $name =="
    local start end
    start=$SECONDS
    "$func"
    end=$SECONDS
    timing_names+=("$name")
    timing_secs+=("$((end - start))")
}

stage_fmt() {
    cargo fmt --all --check
}

stage_clippy() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_doc() {
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
}

stage_test() {
    if [ "$mode" = "quick" ]; then
        cargo test --workspace --exclude trigon-bench -- --skip prop_
    else
        cargo test --workspace --exclude trigon-bench
    fi
}

stage_trace() {
    local trace_out="$scratch/trace.json"
    cargo run --release --quiet -- run --gen gnp --n 500 --method gpu-opt \
        --trace "$trace_out" --verbose > /dev/null
    grep -q '"traceEvents"' "$trace_out"
    grep -q '"SM 0"' "$trace_out"
}

# Fault-recovery smoke test: a run with injected transfer and ECC faults
# must exit 0 and report the exact count of an unfaulted serial run.
stage_faults() {
    local serial faulted
    serial="$(cargo run --release --quiet -- run --gen gnp --n 500 \
        --method cpu-fast | awk '/^triangles/ {print $2}')"
    faulted="$(cargo run --release --quiet -- run --gen gnp --n 500 \
        --method gpu-opt --faults xfer:1,ecc:2 --fault-seed 7 \
        | awk '/^triangles/ {print $2}')"
    if [ -z "$serial" ] || [ "$serial" != "$faulted" ]; then
        echo "fault recovery drifted: serial=$serial faulted=$faulted" >&2
        return 1
    fi
    echo "recovered count $faulted matches serial"
}

# Multi-device fleet smoke test: a heterogeneous fleet run and a fleet
# run losing 2 of 4 devices must both exit 0 and report the exact count
# of a serial CPU run (the sharded reduction is bit-identical by design).
stage_fleet() {
    local serial fleet lossy
    serial="$(cargo run --release --quiet -- run --gen ring --n 1000 \
        --method cpu-fast | awk '/^triangles/ {print $2}')"
    fleet="$(cargo run --release --quiet -- run --gen ring --n 1000 \
        --method gpu-opt --devices 2xC2050,1xC1060 \
        | awk '/^triangles/ {print $2}')"
    lossy="$(cargo run --release --quiet -- run --gen ring --n 1000 \
        --method gpu-opt --devices 4xC2050 --device-loss 2 --fault-seed 7 \
        | awk '/^triangles/ {print $2}')"
    if [ -z "$serial" ] || [ "$serial" != "$fleet" ] || [ "$serial" != "$lossy" ]; then
        echo "fleet counts drifted: serial=$serial fleet=$fleet lossy=$lossy" >&2
        return 1
    fi
    echo "fleet count $fleet matches serial (with and without device loss)"
}

# Simulated cluster smoke tests: a one-node cluster must report exactly
# the numbers of the equivalent plain fleet run (the one-node path
# delegates verbatim; full byte-identity of trace and report is pinned
# by tests/prop_cluster.rs, which this stage also runs in full mode), a
# 4-node run with node loss and injected chunk faults must report the
# exact count of a serial CPU run, and the 64-node scaling sweep must
# write bench_out/BENCH_cluster.json with its bench_meta provenance
# header.
stage_cluster() {
    local plain_fleet one_node serial faulted line
    plain_fleet="$(cargo run --release --quiet -- run --gen ring --n 1000 \
        --method gpu-opt --devices 2xC2050 \
        | awk '/^(triangles|tests|kernel|makespan|layout)/')"
    one_node="$(cargo run --release --quiet -- run --gen ring --n 1000 \
        --method gpu-opt --cluster '1x(2xC2050)' \
        | awk '/^(triangles|tests|kernel|makespan|layout)/')"
    if [ -z "$plain_fleet" ] || [ "$plain_fleet" != "$one_node" ]; then
        echo "one-node cluster diverged from the plain fleet run:" >&2
        diff <(echo "$plain_fleet") <(echo "$one_node") >&2 || true
        return 1
    fi
    serial="$(cargo run --release --quiet -- run --gen ring --n 1000 \
        --method cpu-fast | awk '/^triangles/ {print $2}')"
    faulted="$(cargo run --release --quiet -- run --gen ring --n 1000 \
        --method gpu-opt --cluster 4xC2050 --node-loss 1 \
        --faults xfer:1,ecc:1 --fault-seed 7 \
        | awk '/^triangles/ {print $2}')"
    if [ -z "$serial" ] || [ "$serial" != "$faulted" ]; then
        echo "faulted cluster count drifted: serial=$serial cluster=$faulted" >&2
        return 1
    fi
    echo "cluster count $faulted matches serial (node loss + chunk faults)"
    cargo test --release --quiet --test prop_cluster
    cargo run --release --quiet -p trigon-bench --bin repro -- cluster > /dev/null
    test -s bench_out/BENCH_cluster.json
    local key
    for key in '"schema_version": 1' '"bench_meta"' '"strong"' '"weak"' \
        '"uplink_cycles"' '"ghost_cycles"'; do
        grep -q "$key" bench_out/BENCH_cluster.json
    done
}

# Workload smoke tests: every ChunkKernel workload runs through the CLI,
# kcount at k = 3 reproduces the triangle count, clustering is unchanged
# by executor choice and by injected faults, and the repro sweep writes
# bench_out/BENCH_workloads.json.
stage_workloads() {
    local tri k3 clus_cpu clus_gpu clus_faulted truss enum_line
    tri="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --method gpu-opt | awk '/^triangles/ {print $2}')"
    k3="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --workload kcount --k 3 | awk '/^cliques/ {print $2}')"
    if [ -z "$tri" ] || [ "$tri" != "$k3" ]; then
        echo "kcount k=3 drifted from triangles: tri=$tri k3=$k3" >&2
        return 1
    fi
    clus_cpu="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --workload clustering --method cpu-fast | awk '/^mean cc/ {print $3}')"
    clus_gpu="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --workload clustering --method gpu-opt | awk '/^mean cc/ {print $3}')"
    clus_faulted="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --workload clustering --method gpu-opt --faults xfer:1,ecc:2 \
        --fault-seed 7 | awk '/^mean cc/ {print $3}')"
    if [ -z "$clus_cpu" ] || [ "$clus_cpu" != "$clus_gpu" ] \
        || [ "$clus_cpu" != "$clus_faulted" ]; then
        echo "clustering drifted: cpu=$clus_cpu gpu=$clus_gpu faulted=$clus_faulted" >&2
        return 1
    fi
    truss="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --workload ktruss --k 4 | awk '/^truss/ {print $2}')"
    enum_line="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --workload enumerate | awk '/^enumerated/ {print $2}')"
    if [ -z "$truss" ] || [ "$enum_line" != "$tri" ]; then
        echo "workload smoke failed: truss=$truss enumerated=$enum_line tri=$tri" >&2
        return 1
    fi
    echo "workloads agree: triangles=$tri truss(k=4)=$truss clustering=$clus_cpu"
    cargo run --release --quiet -p trigon-bench --bin repro -- workloads > /dev/null
    test -s bench_out/BENCH_workloads.json
    local key
    for key in '"schema_version": 1' '"workload": "ktruss"' '"workload": "clustering"' \
        '"checksum"' '"mean_clustering"'; do
        grep -q "$key" bench_out/BENCH_workloads.json
    done
}

# Intersection smoke test: the degree-ordered adjacency-intersection
# backends (host and simulated-device) must report the exact count of
# the combination fast path through the CLI, the simulated variant must
# survive a fault plan bit-identically, and the dedicated property suite
# must pass.
stage_intersect() {
    local comb cpu gpu faulted
    comb="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --method cpu-fast | awk '/^triangles/ {print $2}')"
    cpu="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --workload triangles --method cpu_intersect \
        | awk '/^triangles/ {print $2}')"
    gpu="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --method gpu-intersect | awk '/^triangles/ {print $2}')"
    faulted="$(cargo run --release --quiet -- run --gen gnp --n 400 \
        --method gpu-intersect --faults xfer:1,ecc:1 --fault-seed 7 \
        | awk '/^triangles/ {print $2}')"
    if [ -z "$comb" ] || [ "$comb" != "$cpu" ] || [ "$comb" != "$gpu" ] \
        || [ "$comb" != "$faulted" ]; then
        echo "intersection drifted: comb=$comb cpu=$cpu gpu=$gpu faulted=$faulted" >&2
        return 1
    fi
    echo "intersection count $cpu matches combination (host, device, faulted)"
    cargo test --release --quiet --test prop_intersect
}

# Serving-daemon smoke test over a stdio pipe: load an R-MAT graph,
# query it twice (the second answer must come from the warm result
# cache with the same count), load a grid whose S-UTM footprint
# overflows the C2050 so the Eqs. 1-2 admission test rejects the query
# with code 5, and check the report op's admission ledger. The
# cache-transparency property suite (tests/prop_serve.rs) then runs.
stage_serve() {
    local out="$scratch/serve_out"
    {
        echo '{"op":"load","name":"r","gen":"rmat","n":600,"seed":7}'
        echo '{"op":"query","graph":"r","workload":"triangles","method":"gpu-opt"}'
        echo '{"op":"query","graph":"r","workload":"triangles","method":"gpu-opt"}'
        echo '{"op":"load","name":"big","gen":"grid","n":262144,"seed":1}'
        echo '{"op":"query","graph":"big","workload":"triangles","method":"gpu-opt"}'
        echo '{"op":"report"}'
        echo '{"op":"shutdown"}'
    } | cargo run --release --quiet -- serve --ndjson --device c2050 > "$out"
    local cold warm cold_count warm_count
    cold="$(sed -n 2p "$out")"
    warm="$(sed -n 3p "$out")"
    echo "$cold" | grep -q '"cache":"miss"'
    echo "$warm" | grep -q '"cache":"hit"'
    cold_count="$(echo "$cold" | grep -o '"count":[0-9]*' | head -1)"
    warm_count="$(echo "$warm" | grep -o '"count":[0-9]*' | head -1)"
    if [ -z "$cold_count" ] || [ "$cold_count" != "$warm_count" ]; then
        echo "warm replay drifted: cold=$cold_count warm=$warm_count" >&2
        return 1
    fi
    sed -n 5p "$out" | grep -q '"ok":false'
    sed -n 5p "$out" | grep -q '"code":5'
    sed -n 6p "$out" | grep -q '"rejected":1'
    sed -n 6p "$out" | grep -q '"result_hits":1'
    echo "daemon smoke: warm ${warm_count#*:} matches cold, oversized grid rejected"
    cargo test --release --quiet --test prop_serve
}

# Ablation sweep (combination vs intersection, layout x schedule) with
# CSV output — the same command the Actions full gate runs, so the two
# can never drift.
stage_ablation() {
    if [ "$mode" = "quick" ]; then
        echo "skipped in quick mode (runs in the full gate)"
        return 0
    fi
    cargo run --release --quiet -p trigon-bench --bin repro -- ablation --csv bench_out
    test -s bench_out/ablation_layout_schedule.csv
    test -s bench_out/ablation_strategies.csv
}

# Measures real wall-clock of the counting strategies, asserts parallel
# counts are bit-identical to the serial ones (inside run_perf), and
# enforces the committed normalized regression envelope: >25 % slowdown
# of the 1-thread fig10 run vs crates/bench/baselines/perf_baseline.json
# fails. Export TRIGON_PERF_SKIP_REGRESSION=1 to measure without gating
# (e.g. on a heavily loaded machine).
stage_perf() {
    cargo run --release --quiet -p trigon-bench --bin repro -- perf --quick \
        --baseline crates/bench/baselines/perf_baseline.json
    test -s bench_out/BENCH_perf.json
    local key
    for key in '"schema_version": 1' '"fig10"' '"fig11"' '"overhead"' '"thread_sweep"'; do
        grep -q "$key" bench_out/BENCH_perf.json
    done
}

# Simulated performance-counter gate. Unlike perf, the counters are
# priced deterministically at simulate time, so the baseline check is
# EXACT: any divergence from
# crates/bench/baselines/profile_baseline.json — one transaction, one
# cycle — fails. Bless an intended cost-model change by deleting the
# baseline, re-running this stage, and committing the rewritten file.
# Export TRIGON_PROFILE_SKIP_REGRESSION=1 to sweep without gating.
# The CLI smoke run also checks --profile writes a counter document and
# --verbose prints the hotspot table.
stage_profile() {
    local profile_out="$scratch/profile.json"
    cargo run --release --quiet -- run --gen gnp --n 500 --method gpu-opt \
        --profile "$profile_out" --verbose > "$scratch/profile_stdout"
    grep -q '"transactions"' "$profile_out"
    grep -q '"roofline"' "$profile_out"
    grep -q 'hottest ALS' "$scratch/profile_stdout"
    cargo run --release --quiet -p trigon-bench --bin repro -- profile \
        --baseline crates/bench/baselines/profile_baseline.json
    test -s bench_out/BENCH_profile.json
    local key
    for key in '"schema_version": 1' '"bench_meta"' '"coalescing_efficiency"' \
        '"min_transactions"' '"bound"'; do
        grep -q "$key" bench_out/BENCH_profile.json
    done
}

case "$mode" in
    all | quick | fmt | clippy | doc | test | trace | faults | fleet | cluster | workloads | intersect | serve | ablation | perf | profile) ;;
    *)
        echo "usage: ./ci.sh [quick|fmt|clippy|doc|test|trace|faults|fleet|cluster|workloads|intersect|serve|ablation|perf|profile]" >&2
        exit 2
        ;;
esac

run_stage fmt stage_fmt
run_stage clippy stage_clippy
run_stage doc stage_doc
run_stage test stage_test
run_stage trace stage_trace
run_stage faults stage_faults
run_stage fleet stage_fleet
run_stage cluster stage_cluster
run_stage workloads stage_workloads
run_stage intersect stage_intersect
run_stage serve stage_serve
run_stage ablation stage_ablation
run_stage perf stage_perf
run_stage profile stage_profile

echo
echo "stage timing:"
for i in "${!timing_names[@]}"; do
    printf '  %-8s %3ds\n' "${timing_names[$i]}" "${timing_secs[$i]}"
done
echo "CI OK"
