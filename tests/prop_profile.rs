//! Determinism properties of the performance-counter profile.
//!
//! The profiler prices every counter at simulate time and attributes it
//! by the *scheduled* placement, so the profile must be bit-identical
//! across worker-thread widths, under arbitrary chunk-level fault plans,
//! and between a one-device fleet and the plain single-GPU executor.
//! Across *different* executors the cost models legitimately differ,
//! but the per-ALS `tests` attribution — the workload itself — must
//! agree exactly on CPU, GPU, and hybrid.

use proptest::prelude::*;
use trigon::gpu_sim::{DeviceSpec, FaultConfig, FaultPlan, FaultSpec};
use trigon::graph::{gen, Graph};
use trigon::{FleetSpec, Level, Method, Run};

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

/// Runs the triangle workload and returns the rendered profile section —
/// comparison is on the serialized bytes, so every counter, hotspot, and
/// roofline figure must match, not just the headline totals.
fn profile_json(
    g: &Graph,
    m: Method,
    threads: Option<usize>,
    faults: Option<FaultConfig>,
    fleet: Option<&str>,
) -> String {
    let mut r = Run::new(g).method(m).telemetry(Level::Off);
    if let Some(t) = threads {
        r = r.threads(t);
    }
    if let Some(fc) = faults {
        r = r.faults(fc);
    }
    if let Some(spec) = fleet {
        r = r.fleet(FleetSpec::parse(spec).unwrap());
    } else {
        r = r.device(DeviceSpec::c1060());
    }
    let rep = r.run().unwrap();
    rep.profile
        .expect("profile section")
        .to_json()
        .to_string_pretty()
}

/// The per-ALS `tests` attribution of a run.
fn per_als_tests(g: &Graph, m: Method) -> Vec<u128> {
    let rep = Run::new(g).method(m).telemetry(Level::Off).run().unwrap();
    rep.profile
        .expect("profile section")
        .data
        .per_als
        .iter()
        .map(|c| c.tests)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Worker-thread width never changes a single profile byte, on both
    /// the simulated-GPU and the hybrid executor.
    #[test]
    fn thread_width_never_changes_the_profile(g in arb_graph(28)) {
        for m in [Method::GpuOptimized, Method::Hybrid] {
            let serial = profile_json(&g, m, Some(1), None, None);
            let wide = profile_json(&g, m, Some(4), None, None);
            prop_assert_eq!(&serial, &wide, "profile drifted with threads on {:?}", m);
        }
    }

    /// Chunk-level fault plans never change a single profile byte: the
    /// counters are priced from the schedule, not the (fault-perturbed)
    /// dispatch replay.
    #[test]
    fn fault_plans_leave_the_profile_bit_identical(
        g in arb_graph(24),
        ecc in 0u32..3,
        xfer in 0u32..3,
        abort in 0u32..3,
        seed in 0u64..500,
    ) {
        let clean = profile_json(&g, Method::GpuOptimized, None, None, None);
        let spec = FaultSpec { ecc, xfer, abort, stall: 0 };
        let fc = FaultConfig::new(FaultPlan::new(spec, seed));
        let faulted = profile_json(&g, Method::GpuOptimized, None, Some(fc), None);
        prop_assert_eq!(&faulted, &clean, "profile drifted under faults");
    }

    /// A one-device fleet prices and attributes exactly like the plain
    /// single-GPU executor.
    #[test]
    fn one_device_fleet_profiles_like_plain_gpu(g in arb_graph(28)) {
        let plain = profile_json(&g, Method::GpuOptimized, None, None, None);
        let fleet = profile_json(&g, Method::GpuOptimized, None, None, Some("1xC1060"));
        prop_assert_eq!(&fleet, &plain, "fleet(1) profile diverged from plain gpu");
    }

    /// Every executor attributes the identical number of combination
    /// tests to the identical ALS — the workload is a property of the
    /// graph, not of the executor or its cost model.
    #[test]
    fn per_als_test_attribution_is_executor_independent(g in arb_graph(28)) {
        let cpu = per_als_tests(&g, Method::CpuFast);
        for m in [Method::GpuNaive, Method::GpuOptimized, Method::Hybrid] {
            prop_assert_eq!(&per_als_tests(&g, m), &cpu, "tests attribution drifted on {:?}", m);
        }
    }
}

/// Counter totals are exactly the fold of the per-ALS axis, and of the
/// per-SM axis (blocks attribute to both), on a real evaluation graph.
#[test]
fn totals_equal_both_attribution_axes() {
    let g = gen::gnp(300, 0.05, 1);
    let rep = Run::new(&g)
        .method(Method::GpuOptimized)
        .device(DeviceSpec::c1060())
        .telemetry(Level::Off)
        .run()
        .unwrap();
    let p = rep.profile.expect("profile section").data;
    let als_tests: u128 = p.per_als.iter().map(|c| c.tests).sum();
    let sm_tests: u128 = p.per_sm.iter().map(|c| c.tests).sum();
    assert_eq!(p.totals.tests, als_tests);
    assert_eq!(p.totals.tests, sm_tests);
    let als_tx: u64 = p.per_als.iter().map(|c| c.transactions).sum();
    let sm_tx: u64 = p.per_sm.iter().map(|c| c.transactions).sum();
    assert_eq!(p.totals.transactions, als_tx);
    assert_eq!(p.totals.transactions, sm_tx);
    assert_eq!(
        rep.tests, p.totals.tests,
        "report tests must match profile totals"
    );
}
