//! End-to-end tests of the `trigon` command-line binary.

use std::process::Command;

fn trigon(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_trigon"))
        .args(args)
        .output()
        .expect("spawn trigon");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Like [`trigon`] but returns the raw exit code for error-path tests.
fn trigon_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_trigon"))
        .args(args)
        .output()
        .expect("spawn trigon");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().expect("exit code"),
    )
}

#[test]
fn devices_prints_table() {
    let (stdout, _, ok) = trigon(&["devices"]);
    assert!(ok);
    for needle in ["C1060", "C2050", "C2070", "185363", "321060"] {
        assert!(stdout.contains(needle), "missing {needle} in:\n{stdout}");
    }
}

#[test]
fn no_args_shows_usage() {
    let (_, stderr, ok) = trigon(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
}

#[test]
fn gen_analyze_count_roundtrip() {
    let dir = std::env::temp_dir().join("trigon_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.txt");
    let path_s = path.to_str().unwrap();

    let (stdout, _, ok) = trigon(&["gen", "gnp", "--n", "200", "--seed", "5", "-o", path_s]);
    assert!(ok, "gen failed: {stdout}");
    assert!(stdout.contains("n = 200"));

    let (stdout, _, ok) = trigon(&["analyze", path_s]);
    assert!(ok);
    assert!(stdout.contains("vertices            200"));
    assert!(stdout.contains("triangles"));

    // CPU and GPU methods agree through the CLI.
    let count_of = |method: &str| -> u64 {
        let (stdout, stderr, ok) = trigon(&["run", path_s, "--method", method]);
        assert!(ok, "run {method} failed: {stderr}");
        stdout
            .lines()
            .find(|l| l.starts_with("triangles"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no triangle count in:\n{stdout}"))
    };
    let cpu = count_of("cpu-fast");
    assert_eq!(count_of("gpu-naive"), cpu);
    assert_eq!(count_of("gpu-opt"), cpu);
    assert_eq!(count_of("gpu-sampled"), cpu);
    assert_eq!(count_of("cpu-intersect"), cpu);
    assert_eq!(count_of("gpu-intersect"), cpu);
}

#[test]
fn count_with_generated_graph() {
    let (stdout, stderr, ok) = trigon(&[
        "run",
        "--gen",
        "ring",
        "--n",
        "600",
        "--method",
        "gpu-sampled",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("triangles"));
    assert!(stdout.contains("camping"));
}

#[test]
fn count_threads_flag_pins_pool_width() {
    // Same count at every width, and width 0 is a usage error.
    let count_at = |t: &str| -> String {
        let (stdout, stderr, ok) = trigon(&[
            "run",
            "--gen",
            "gnp",
            "--n",
            "400",
            "--method",
            "cpu-fast",
            "--threads",
            t,
        ]);
        assert!(ok, "--threads {t} failed: {stderr}");
        stdout
            .lines()
            .find(|l| l.starts_with("triangles"))
            .unwrap_or_else(|| panic!("no triangle line in:\n{stdout}"))
            .to_string()
    };
    let serial = count_at("1");
    assert_eq!(count_at("4"), serial);
    let (_, stderr, ok) = trigon(&["run", "--gen", "gnp", "--n", "50", "--threads", "0"]);
    assert!(!ok);
    assert!(stderr.contains("--threads"), "{stderr}");
}

#[test]
fn count_trace_writes_chrome_trace_json() {
    let dir = std::env::temp_dir().join("trigon_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    let path_s = path.to_str().unwrap();

    let (stdout, stderr, ok) = trigon(&[
        "run",
        "--gen",
        "gnp",
        "--n",
        "300",
        "--method",
        "gpu-opt",
        "--trace",
        path_s,
        "--verbose",
    ]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("perfetto"), "{stderr}");
    // --verbose adds the trace summary and the per-SM ASCII timeline.
    assert!(stdout.contains("trace"), "{stdout}");
    assert!(stdout.contains("per-SM timeline"), "{stdout}");
    assert!(stdout.contains("PCIe"), "{stdout}");
    assert!(stdout.contains("SM  0"), "{stdout}");

    // The written file parses back with the vendored JSON reader and has
    // the Chrome trace-event shape: host phase spans on pid 0 and at
    // least one kernel span per SM on pid 1.
    let text = std::fs::read_to_string(&path).unwrap();
    let j = trigon::Json::parse(&text).unwrap();
    let events = match j.get("traceEvents") {
        Some(trigon::Json::Array(a)) => a,
        other => panic!("traceEvents missing: {other:?}"),
    };
    let str_of = |e: &trigon::Json, k: &str| match e.get(k) {
        Some(trigon::Json::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let uint_of = |e: &trigon::Json, k: &str| match e.get(k) {
        Some(trigon::Json::UInt(v)) => Some(*v),
        _ => None,
    };
    let host_spans = events
        .iter()
        .filter(|e| str_of(e, "ph") == "X" && uint_of(e, "pid") == Some(0))
        .count();
    assert!(
        host_spans >= 3,
        "want load/count/run host spans, got {host_spans}"
    );
    let device_sm_tids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| str_of(e, "ph") == "X" && uint_of(e, "pid") == Some(1))
        .filter_map(|e| uint_of(e, "tid"))
        .filter(|&tid| tid >= 1)
        .collect();
    let sm_threads = events
        .iter()
        .filter(|e| str_of(e, "ph") == "M" && str_of(e, "name") == "thread_name")
        .filter(|e| {
            matches!(e.get("args").and_then(|a| a.get("name")),
                     Some(trigon::Json::Str(s)) if s.starts_with("SM "))
        })
        .count();
    assert!(sm_threads > 0, "no SM thread metadata");
    // On the device process PCIe is tid 0 and SM i is tid i + 1, so tids
    // >= 1 are SM lanes; a 300-node gnp run spreads blocks over several.
    assert!(
        device_sm_tids.len() >= 2,
        "want device spans on several lanes, got {device_sm_tids:?}"
    );
}

#[test]
fn kcount_subcommand() {
    let dir = std::env::temp_dir().join("trigon_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("k4.txt");
    let path_s = path.to_str().unwrap();
    // K5 has C(5,4) = 5 four-cliques.
    let (_, _, ok) = trigon(&["gen", "complete", "--n", "5", "-o", path_s]);
    assert!(ok);
    let (stdout, _, ok) = trigon(&["kcount", path_s, "--k", "4", "--what", "cliques"]);
    assert!(ok);
    assert!(stdout.contains("cliques of size 4: 5"), "{stdout}");
}

#[test]
fn split_subcommand() {
    let (stdout, _, ok) = trigon(&["split", "--gen", "ring", "--n", "2000", "--device", "c1060"]);
    assert!(ok);
    assert!(stdout.contains("chunks on C1060"), "{stdout}");
    assert!(stdout.contains("shared"));
}

#[test]
fn hybrid_subcommand() {
    let (stdout, stderr, ok) = trigon(&["hybrid", "--gen", "ring", "--n", "1200"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("ALS placement"), "{stdout}");
    assert!(stdout.contains("kernel (LPT)"));
    assert!(stdout.contains("kernel (Eq. 6)"));
}

#[test]
fn camping_demo_renders() {
    let (stdout, _, ok) = trigon(&["camping"]);
    assert!(ok);
    assert!(stdout.contains("camping factor 7.50"));
    assert!(stdout.contains("camping factor 1.00"));
}

#[test]
fn count_with_faults_recovers_and_reports() {
    // Serial reference.
    let (serial, _, ok) = trigon(&["run", "--gen", "gnp", "--n", "500", "--method", "cpu-fast"]);
    assert!(ok);
    let line = serial
        .lines()
        .find(|l| l.starts_with("triangles"))
        .expect("triangle line")
        .to_string();
    // Faulted simulated run: same count, plus the fault/recovery summary.
    let (stdout, stderr, ok) = trigon(&[
        "run",
        "--gen",
        "gnp",
        "--n",
        "500",
        "--method",
        "gpu-opt",
        "--faults",
        "xfer:1,ecc:2",
        "--fault-seed",
        "7",
    ]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains(&line),
        "count drifted:\n{stdout}\nvs {line}"
    );
    assert!(
        stdout.contains("faults        ecc:2,xfer:1 (seed 7)"),
        "{stdout}"
    );
    assert!(stdout.contains("recovery"), "{stdout}");
    // The JSON report carries the faults block.
    let (json, stderr, ok) = trigon(&[
        "run", "--gen", "gnp", "--n", "500", "--method", "gpu-opt", "--faults", "ecc:1", "--json",
    ]);
    assert!(ok, "{stderr}");
    let j = trigon::Json::parse(&json).unwrap();
    let f = j.get("faults").expect("faults block in JSON report");
    assert!(
        matches!(f.get("seed"), Some(trigon::Json::UInt(0))),
        "{f:?}"
    );
}

/// Malformed `--faults` specs are parse errors (exit 4) with a pointed
/// message; `--fault-seed` without `--faults` is a usage error (exit 2).
#[test]
fn fault_flag_error_paths() {
    let base: &[&str] = &["run", "--gen", "gnp", "--n", "50", "--method", "gpu-opt"];
    let with = |extra: &[&str]| {
        let mut v = base.to_vec();
        v.extend_from_slice(extra);
        trigon_code(&v)
    };

    let (_, stderr, code) = with(&["--faults", "bogus:2"]);
    assert_eq!(code, 4, "{stderr}");
    assert!(stderr.contains("unknown fault kind"), "{stderr}");

    let (_, stderr, code) = with(&["--faults", "ecc"]);
    assert_eq!(code, 4, "{stderr}");
    assert!(stderr.contains("--faults"), "{stderr}");

    let (_, stderr, code) = with(&["--faults", "ecc:notanumber"]);
    assert_eq!(code, 4, "{stderr}");

    let (_, stderr, code) = with(&["--fault-seed", "3"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--fault-seed needs --faults"), "{stderr}");

    let (_, stderr, code) = with(&["--faults", "ecc:1", "--fault-seed", "-2"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--fault-seed"), "{stderr}");

    // Faults need a simulated device to inject into.
    let (_, stderr, code) = trigon_code(&[
        "run", "--gen", "gnp", "--n", "50", "--method", "cpu", "--faults", "ecc:1",
    ]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("simulated-device"), "{stderr}");

    // Hybrid accepts only transfer faults.
    let (_, stderr, code) = trigon_code(&[
        "run", "--gen", "gnp", "--n", "50", "--method", "hybrid", "--faults", "abort:1",
    ]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("xfer"), "{stderr}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let (_, stderr, ok) = trigon(&["run", "/nonexistent/file.txt"]);
    assert!(!ok);
    assert!(stderr.contains("open"));
    let (_, stderr, ok) = trigon(&["run", "--gen", "bogus", "--n", "10"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"));
    let (_, stderr, ok) = trigon(&["gen", "gnp"]);
    assert!(!ok);
    assert!(stderr.contains("--n"));
}

#[test]
fn run_subcommand_workloads() {
    let base = &["run", "--gen", "gnp", "--n", "200"];
    let with = |extra: &[&str]| {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(extra);
        trigon(&args)
    };

    // Default workload is triangles; the first line carries the count.
    let (tri_out, stderr, ok) = with(&[]);
    assert!(ok, "{stderr}");
    assert!(
        !stderr.contains("deprecated"),
        "run must not warn: {stderr}"
    );
    let tri = tri_out
        .lines()
        .find_map(|l| l.strip_prefix("triangles")?.trim().parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no triangle count in:\n{tri_out}"));

    // kcount at k = 3 reproduces the triangle count.
    let (stdout, stderr, ok) = with(&["--workload", "kcount", "--k", "3"]);
    assert!(ok, "{stderr}");
    let k3 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("cliques")?.trim().parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no clique count in:\n{stdout}"));
    assert_eq!(k3, tri);

    // Clustering prints mean cc and transitivity, same on CPU and GPU.
    let (cpu, stderr, ok) = with(&["--workload", "clustering", "--method", "cpu-fast"]);
    assert!(ok, "{stderr}");
    assert!(cpu.contains("mean cc"), "{cpu}");
    assert!(cpu.contains("transitivity"), "{cpu}");
    let (gpu, stderr, ok) = with(&["--workload", "clustering", "--method", "gpu-opt"]);
    assert!(ok, "{stderr}");
    let line = |s: &str, p: &str| {
        s.lines()
            .find(|l| l.starts_with(p))
            .map(str::to_string)
            .unwrap_or_default()
    };
    assert_eq!(line(&cpu, "mean cc"), line(&gpu, "mean cc"));
    assert_eq!(line(&cpu, "transitivity"), line(&gpu, "transitivity"));

    // k-truss reports the edge census; enumeration lists every triangle.
    let (stdout, stderr, ok) = with(&["--workload", "ktruss", "--k", "4"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("truss"), "{stdout}");
    assert!(stdout.contains("peeled"), "{stdout}");
    let (stdout, stderr, ok) = with(&["--workload", "enumerate"]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains(&format!("enumerated    {tri} listed")),
        "{stdout}"
    );

    // --json carries the workload section.
    let (json, stderr, ok) = with(&["--workload", "ktruss", "--k", "4", "--json"]);
    assert!(ok, "{stderr}");
    assert!(json.contains("\"workload\""), "{json}");
    assert!(json.contains("\"edges_kept\""), "{json}");

    // Bad workload / orphan --k are usage errors.
    let (_, stderr, code) =
        trigon_code(&["run", "--gen", "gnp", "--n", "50", "--workload", "bogus"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("unknown workload"), "{stderr}");
    let (_, stderr, code) = trigon_code(&["run", "--gen", "gnp", "--n", "50", "--k", "4"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--k needs --workload"), "{stderr}");
}

/// The deprecated `count` alias is gone: it now fails like any unknown
/// subcommand, with usage on stderr and no deprecation chatter.
#[test]
fn count_alias_is_removed() {
    let (_, stderr, ok) = trigon(&[
        "count", "--gen", "gnp", "--n", "200", "--method", "cpu-fast",
    ]);
    assert!(!ok, "removed alias must not run");
    assert!(stderr.contains("usage"), "{stderr}");
    assert!(!stderr.contains("deprecated"), "{stderr}");
    // And the usage text advertises both intersection methods instead.
    assert!(stderr.contains("cpu-intersect"), "{stderr}");
    assert!(stderr.contains("gpu-intersect"), "{stderr}");
}

/// CLI smoke for the degree-ordered intersection backends: same count
/// as the combination fast path, far fewer priced operations, and the
/// simulated variant reports device-side telemetry.
#[test]
fn intersect_methods_through_the_cli() {
    let line_of = |stdout: &str, prefix: &str| -> String {
        stdout
            .lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("no `{prefix}` line in:\n{stdout}"))
            .to_string()
    };
    let base = &["run", "--gen", "gnp", "--n", "400", "--method"];
    let run_m = |m: &str| {
        let mut args = base.to_vec();
        args.push(m);
        let (stdout, stderr, ok) = trigon(&args);
        assert!(ok, "run {m} failed: {stderr}");
        stdout
    };

    let fast = run_m("cpu-fast");
    let cpu = run_m("cpu-intersect");
    let gpu = run_m("gpu-intersect");
    let tri = line_of(&fast, "triangles");
    assert_eq!(line_of(&cpu, "triangles"), tri, "cpu-intersect drifted");
    assert_eq!(line_of(&gpu, "triangles"), tri, "gpu-intersect drifted");

    // The tests field prices intersection ops, orders of magnitude
    // below the combination method's candidate tests.
    let tests_of = |s: &str| -> u64 {
        line_of(s, "tests")
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .expect("tests value")
    };
    assert!(
        tests_of(&cpu) * 10 < tests_of(&fast),
        "intersection must price far fewer ops: {} vs {}",
        tests_of(&cpu),
        tests_of(&fast)
    );

    // The simulated variant goes through the device model (camping,
    // transactions) and accepts fault plans bit-identically.
    assert!(gpu.contains("camping"), "{gpu}");
    let (faulted, stderr, ok) = trigon(&[
        "run",
        "--gen",
        "gnp",
        "--n",
        "400",
        "--method",
        "gpu-intersect",
        "--faults",
        "ecc:1,abort:1",
        "--fault-seed",
        "3",
    ]);
    assert!(ok, "{stderr}");
    assert_eq!(
        line_of(&faulted, "triangles"),
        tri,
        "fault recovery drifted"
    );
    assert!(faulted.contains("recovery"), "{faulted}");

    // The underscore spelling parses too.
    let under = run_m("cpu_intersect");
    assert_eq!(line_of(&under, "triangles"), tri);
}

/// The cluster tier through the CLI: counts agree with a plain run and
/// with serial, the text report carries the cluster block, node loss
/// reshards without perturbing the count, and the JSON report carries
/// the populated `cluster` section.
#[test]
fn run_cluster_through_the_cli() {
    let line_of = |stdout: &str, prefix: &str| -> String {
        stdout
            .lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("no `{prefix}` line in:\n{stdout}"))
            .to_string()
    };
    let base: &[&str] = &["run", "--gen", "ring", "--n", "600", "--method", "gpu-opt"];
    let run_extra = |extra: &[&str]| {
        let mut args = base.to_vec();
        args.extend_from_slice(extra);
        let (stdout, stderr, ok) = trigon(&args);
        assert!(ok, "run {extra:?} failed: {stderr}");
        stdout
    };

    let plain = run_extra(&[]);
    let tri = line_of(&plain, "triangles");

    let clustered = run_extra(&["--cluster", "4x(2xC2050)"]);
    assert_eq!(line_of(&clustered, "triangles"), tri, "cluster drifted");
    assert!(
        clustered.contains("cluster       4x(2xC2050)"),
        "{clustered}"
    );
    assert!(clustered.contains("partition"), "{clustered}");
    assert!(clustered.contains("node  0"), "{clustered}");

    // Pinned layouts and node loss keep the count.
    for extra in [
        &["--cluster", "4xC2050", "--partition", "1d"][..],
        &["--cluster", "4xC2050", "--partition", "2d"][..],
        &[
            "--cluster",
            "4xC2050",
            "--node-loss",
            "2",
            "--fault-seed",
            "9",
        ][..],
    ] {
        let out = run_extra(extra);
        assert_eq!(line_of(&out, "triangles"), tri, "{extra:?} drifted");
    }
    let lost = run_extra(&["--cluster", "4xC2050", "--node-loss", "2"]);
    assert!(lost.contains("2 lost"), "{lost}");
    assert!(lost.contains("LOST"), "{lost}");

    // JSON carries the populated cluster section.
    let json = run_extra(&["--cluster", "2x(2xC2050)", "--json"]);
    assert!(json.contains("\"cluster\": {"), "{json}");
    assert!(json.contains("\"strategy\""), "{json}");
    assert!(json.contains("\"per_node\""), "{json}");
}

/// Cluster flag error paths: malformed specs are parse errors (exit 4);
/// orphaned or invalid flag combinations are configuration errors
/// (exit 2).
#[test]
fn cluster_flag_error_paths() {
    let base: &[&str] = &["run", "--gen", "gnp", "--n", "50", "--method", "gpu-opt"];
    let with = |extra: &[&str]| {
        let mut v = base.to_vec();
        v.extend_from_slice(extra);
        trigon_code(&v)
    };

    let (_, stderr, code) = with(&["--cluster", "0x(C2050)"]);
    assert_eq!(code, 4, "{stderr}");
    assert!(stderr.contains("--cluster"), "{stderr}");

    let (_, stderr, code) = with(&["--cluster", "65xC2050"]);
    assert_eq!(code, 4, "{stderr}");

    let (_, stderr, code) = with(&["--cluster", "2x((C2050)"]);
    assert_eq!(code, 4, "{stderr}");

    let (_, stderr, code) = with(&["--node-loss", "1"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--node-loss needs --cluster"), "{stderr}");

    let (_, stderr, code) = with(&["--partition", "2d"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--partition needs --cluster"), "{stderr}");

    let (_, stderr, code) = with(&["--cluster", "2xC2050", "--partition", "3d"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("partition"), "{stderr}");

    let (_, stderr, code) = with(&["--cluster", "2xC2050", "--devices", "2xC2050"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    // Non-GPU methods reject a cluster.
    let (_, stderr, code) = trigon_code(&[
        "run",
        "--gen",
        "gnp",
        "--n",
        "50",
        "--method",
        "cpu",
        "--cluster",
        "2xC2050",
    ]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("gpu-*"), "{stderr}");
}

// ---------------------------------------------------------------------------
// Serving daemon and dataset-ingestion error paths.
// ---------------------------------------------------------------------------

/// A `trigon serve --listen 127.0.0.1:0` child plus the address it
/// printed; killed on drop so a failing assertion can't leak a daemon.
struct Daemon {
    child: std::process::Child,
    addr: String,
}

impl Daemon {
    fn spawn() -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_trigon"))
            .args(["serve", "--listen", "127.0.0.1:0"])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn daemon");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        std::io::BufRead::read_line(&mut std::io::BufReader::new(stdout), &mut line)
            .expect("read listen banner");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn query(&self, args: &[&str]) -> (String, String, i32) {
        let mut full = vec!["query", "--to", self.addr.as_str()];
        full.extend_from_slice(args);
        trigon_code(&full)
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Nulls the wall-clock-bearing report sections and the per-request
/// serving annotation so served and one-shot reports compare bitwise.
fn strip_volatile(report: &trigon::Json) -> trigon::Json {
    let mut r = report.clone();
    r.set("serving", trigon::Json::Null);
    r.set("timing", trigon::Json::Null);
    r.set("telemetry", trigon::Json::Null);
    r
}

#[test]
fn malformed_dataset_exits_4() {
    let dir = std::env::temp_dir().join("trigon_cli_malformed");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.txt");
    std::fs::write(&path, "0 1\n1 junk\n").unwrap();
    let path_s = path.to_str().unwrap();

    let (_, stderr, code) = trigon_code(&["run", path_s]);
    assert_eq!(code, 4, "{stderr}");
    assert!(stderr.contains("parse"), "{stderr}");

    // An edge list mislabeled as MatrixMarket fails the same way.
    let (_, stderr, code) = trigon_code(&["analyze", path_s, "--format", "mm"]);
    assert_eq!(code, 4, "{stderr}");
    assert!(stderr.contains("parse"), "{stderr}");

    // The daemon's load op surfaces the identical code over the wire.
    let daemon = Daemon::spawn();
    let (_, stderr, code) = daemon.query(&["load", "bad", path_s]);
    assert_eq!(code, 4, "{stderr}");
    let (_, _, code) = daemon.query(&["shutdown"]);
    assert_eq!(code, 0);
}

#[test]
fn query_against_unloaded_graph_exits_2() {
    let daemon = Daemon::spawn();
    let (_, stderr, code) = daemon.query(&["run", "missing", "--workload", "triangles"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("missing"), "{stderr}");

    let (_, stderr, code) = daemon.query(&["evict", "missing"]);
    assert_eq!(code, 2, "{stderr}");

    let (_, _, code) = daemon.query(&["shutdown"]);
    assert_eq!(code, 0);
}

#[test]
fn serve_concurrent_queries_match_one_shot() {
    let daemon = Daemon::spawn();
    let (_, stderr, code) =
        daemon.query(&["load", "ra", "--gen", "rmat", "--n", "400", "--seed", "7"]);
    assert_eq!(code, 0, "{stderr}");
    let (_, stderr, code) =
        daemon.query(&["load", "gb", "--gen", "gnp", "--n", "300", "--seed", "3"]);
    assert_eq!(code, 0, "{stderr}");

    // Eight concurrent clients across two graphs and four workloads.
    let coords: [(&str, &str, Option<&str>); 8] = [
        ("ra", "triangles", None),
        ("ra", "clustering", None),
        ("ra", "enumerate", None),
        ("ra", "ktruss", Some("3")),
        ("gb", "triangles", None),
        ("gb", "clustering", None),
        ("gb", "enumerate", None),
        ("gb", "ktruss", Some("3")),
    ];
    let handles: Vec<_> = coords
        .iter()
        .map(|&(g, w, k)| {
            let addr = daemon.addr.clone();
            std::thread::spawn(move || {
                let mut args = vec![
                    "query",
                    "--to",
                    &addr,
                    "--json",
                    "run",
                    g,
                    "--workload",
                    w,
                    "--method",
                    "gpu-opt",
                ];
                if let Some(k) = k {
                    args.extend_from_slice(&["--k", k]);
                }
                let out = Command::new(env!("CARGO_BIN_EXE_trigon"))
                    .args(&args)
                    .output()
                    .expect("spawn client");
                assert!(
                    out.status.success(),
                    "client {g}/{w} failed: {}",
                    String::from_utf8_lossy(&out.stderr)
                );
                (g, w, k, String::from_utf8_lossy(&out.stdout).into_owned())
            })
        })
        .collect();

    for handle in handles {
        let (g, w, k, stdout) = handle.join().expect("client thread");
        let resp = trigon::Json::parse(&stdout).expect("client response parses");
        let served = match resp.get("reports") {
            Some(trigon::Json::Array(reports)) if reports.len() == 1 => reports[0].clone(),
            other => panic!("expected one report for {g}/{w}, got {other:?}"),
        };

        let (model, n, seed) = if g == "ra" {
            ("rmat", "400", "7")
        } else {
            ("gnp", "300", "3")
        };
        let mut args = vec![
            "run",
            "--gen",
            model,
            "--n",
            n,
            "--seed",
            seed,
            "--workload",
            w,
            "--method",
            "gpu-opt",
            "--json",
        ];
        if let Some(k) = k {
            args.extend_from_slice(&["--k", k]);
        }
        let (stdout, stderr, ok) = trigon(&args);
        assert!(ok, "one-shot {g}/{w} failed: {stderr}");
        let one_shot = trigon::Json::parse(&stdout).expect("one-shot report parses");

        assert_eq!(
            strip_volatile(&served),
            strip_volatile(&one_shot),
            "served report for {g}/{w} diverged from one-shot `trigon run`"
        );
    }

    let (_, _, code) = daemon.query(&["shutdown"]);
    assert_eq!(code, 0);
}
