//! Golden-file pin of the [`trigon::RunReport`] JSON schema.
//!
//! The test compares the *key paths* of serialized reports — never the
//! values, which carry timings — against `tests/golden/*.txt`. A schema
//! change (added, renamed, or moved keys) fails here until the golden
//! files are regenerated and `RUN_REPORT_SCHEMA_VERSION` is bumped:
//!
//! ```text
//! BLESS=1 cargo test --test run_report_schema
//! ```

use trigon::gpu_sim::{DeviceSpec, FaultConfig, FaultPlan, FaultSpec};
use trigon::graph::gen;
use trigon::serve::{Server, ServerConfig};
use trigon::{
    Analysis, ClusterSpec, FleetSpec, Json, Level, LossPlan, Method, RunReport, Workload,
};

fn check_golden(name: &str, report: &RunReport) {
    check_golden_json(name, &report.to_json());
}

fn check_golden_json(name: &str, json: &Json) {
    let actual = json.key_paths().join("\n") + "\n";
    let path = format!("{}/tests/golden/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path} ({e}); run with BLESS=1"));
    assert_eq!(
        actual, expected,
        "RunReport JSON schema drifted from {path}.\n\
         If intentional: bump RUN_REPORT_SCHEMA_VERSION and re-bless with BLESS=1."
    );
}

#[test]
fn gpu_report_schema_is_pinned() {
    let g = gen::gnp(200, 0.05, 1);
    let r = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .device(DeviceSpec::c1060())
        .telemetry(Level::Trace)
        .run()
        .unwrap();
    check_golden("run_report_gpu_keys", &r);
}

#[test]
fn hybrid_report_schema_is_pinned() {
    let g = gen::community_ring(1_000, 100, 0.2, 2, 5);
    let r = Analysis::new(&g)
        .method(Method::Hybrid)
        .telemetry(Level::Trace)
        .run()
        .unwrap();
    check_golden("run_report_hybrid_keys", &r);
}

#[test]
fn cpu_report_schema_is_pinned() {
    let g = gen::gnp(200, 0.05, 1);
    let r = Analysis::new(&g)
        .method(Method::CpuFast)
        .telemetry(Level::Trace)
        .run()
        .unwrap();
    check_golden("run_report_cpu_keys", &r);
}

/// A faulted run pins the `faults` block: the populated section must keep
/// the same key set whatever the plan injects.
#[test]
fn faulted_report_schema_is_pinned() {
    let g = gen::gnp(300, 0.05, 1);
    let spec = FaultSpec::parse("ecc:2,xfer:1,abort:1,stall:1").unwrap();
    let r = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .device(DeviceSpec::c1060())
        .telemetry(Level::Trace)
        .faults(FaultConfig::new(FaultPlan::new(spec, 7)))
        .run()
        .unwrap();
    assert!(r.faults.is_some(), "faulted run must emit a faults section");
    check_golden("run_report_faults_keys", &r);
}

/// A multi-device fleet run with device loss pins the `fleet` block —
/// the populated section (including the `per_device[]` element shape)
/// must keep the same key set whatever the roster or loss plan.
#[test]
fn fleet_report_schema_is_pinned() {
    let g = gen::community_ring(1_000, 100, 0.2, 2, 5);
    let r = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .fleet(FleetSpec::parse("2xC2050,1xC1060").unwrap())
        .device_loss(LossPlan::new(1, 7))
        .telemetry(Level::Trace)
        .run()
        .unwrap();
    assert!(r.fleet.is_some(), "fleet run must emit a fleet section");
    check_golden("run_report_fleet_keys", &r);
}

/// A multi-node cluster run with node loss pins the `cluster` block —
/// the populated section (including the `per_node[]` element shape)
/// must keep the same key set whatever the roster, layout, or loss
/// plan.
#[test]
fn cluster_report_schema_is_pinned() {
    let g = gen::community_ring(1_000, 100, 0.2, 2, 5);
    let r = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .cluster(ClusterSpec::parse("2x(2xC2050),2x(C1060)").unwrap())
        .node_loss(LossPlan::new(1, 7))
        .telemetry(Level::Trace)
        .run()
        .unwrap();
    assert!(
        r.cluster.is_some(),
        "cluster run must emit a cluster section"
    );
    check_golden("run_report_cluster_keys", &r);
}

/// Each non-triangle workload carries its own `workload` section shape;
/// pin one golden per variant across three different methods so the
/// section's keys are stable regardless of the method that produced it.
#[test]
fn clustering_report_schema_is_pinned() {
    let g = gen::gnp(200, 0.05, 1);
    let r = Analysis::new(&g)
        .workload(Workload::Clustering)
        .method(Method::GpuOptimized)
        .device(DeviceSpec::c1060())
        .telemetry(Level::Trace)
        .execute()
        .unwrap();
    check_golden("workload_clustering_keys", &r);
}

#[test]
fn ktruss_report_schema_is_pinned() {
    let g = gen::gnp(200, 0.05, 1);
    let r = Analysis::new(&g)
        .workload(Workload::KTruss(3))
        .method(Method::CpuFast)
        .telemetry(Level::Trace)
        .execute()
        .unwrap();
    check_golden("workload_ktruss_keys", &r);
}

#[test]
fn enumerate_report_schema_is_pinned() {
    let g = gen::gnp(200, 0.05, 1);
    let r = Analysis::new(&g)
        .workload(Workload::Enumerate)
        .method(Method::GpuSampled)
        .device(DeviceSpec::c1060())
        .telemetry(Level::Trace)
        .execute()
        .unwrap();
    check_golden("workload_enumerate_keys", &r);
}

/// A report answered by the serving daemon pins the populated `serving`
/// section — admission verdict, routing target, cache dispositions, and
/// the batching ledger — on top of the ordinary v8 report shape.
#[test]
fn served_report_schema_is_pinned() {
    let server = Server::new(ServerConfig::default());
    let g = gen::gnp(200, 0.05, 1);
    server
        .registry()
        .load("g", g, "golden".to_string())
        .unwrap();
    let (resp, _) = server.handle(
        &Json::parse(r#"{"op":"query","graph":"g","workload":"triangles","method":"gpu-opt"}"#)
            .unwrap(),
    );
    let report = match resp.get("reports") {
        Some(Json::Array(reports)) if reports.len() == 1 => reports[0].clone(),
        other => panic!("expected one served report, got {other:?}"),
    };
    check_golden_json("run_report_serving_keys", &report);
}

/// The profile section must be populated (not `Null`) on every executor
/// path — its key shape is already pinned by the per-method goldens
/// above, so this guards against an arm forgetting to attach it.
#[test]
fn every_executor_attaches_a_profile_section() {
    let g = gen::gnp(200, 0.05, 1);
    for method in [Method::CpuFast, Method::GpuOptimized, Method::Hybrid] {
        let r = Analysis::new(&g)
            .method(method)
            .telemetry(Level::Off)
            .run()
            .unwrap();
        let p = r
            .profile
            .unwrap_or_else(|| panic!("{method:?} run must emit a profile section"));
        assert!(
            p.data.totals.tests > 0,
            "{method:?} profile must attribute tests"
        );
    }
}

#[test]
fn schema_version_is_current() {
    assert_eq!(trigon::core::RUN_REPORT_SCHEMA_VERSION, 8);
}
