//! Cross-crate integration: every counting path agrees on every
//! generator family, and known closed forms hold end to end.

use trigon::gpu_sim::DeviceSpec;
use trigon::graph::{gen, triangles, Graph};
use trigon::{Analysis, Method, RunReport};

fn all_methods() -> Vec<(&'static str, Method, DeviceSpec)> {
    vec![
        ("cpu_exhaustive", Method::CpuExhaustive, DeviceSpec::c1060()),
        ("cpu_fast", Method::CpuFast, DeviceSpec::c1060()),
        ("gpu_naive", Method::GpuNaive, DeviceSpec::c1060()),
        ("gpu_optimized", Method::GpuOptimized, DeviceSpec::c1060()),
        ("gpu_sampled", Method::GpuSampled, DeviceSpec::c1060()),
        ("gpu_fermi", Method::GpuOptimized, DeviceSpec::c2050()),
        ("hybrid", Method::Hybrid, DeviceSpec::c1060()),
    ]
}

fn run(g: &Graph, method: Method, device: DeviceSpec) -> RunReport {
    Analysis::new(g)
        .method(method)
        .device(device)
        .run()
        .unwrap()
}

fn check_graph(g: &Graph, label: &str) {
    let expect = triangles::count_edge_iterator(g);
    for (name, method, device) in all_methods() {
        let r = Analysis::new(g)
            .method(method)
            .device(device)
            .run()
            .unwrap_or_else(|e| panic!("{label}/{name}: {e}"));
        assert_eq!(r.count, expect, "{label}: method {name}");
        assert_eq!(r.n, g.n());
        assert_eq!(r.m, g.m());
    }
}

#[test]
fn families_agree_across_all_methods() {
    check_graph(&gen::complete(20), "K20");
    check_graph(&gen::path(40), "P40");
    check_graph(&gen::cycle(30), "C30");
    check_graph(&gen::star(40), "star40");
    check_graph(&gen::complete_bipartite(10, 12), "K10,12");
    check_graph(&gen::grid2d(8, 8), "grid8x8");
    check_graph(&gen::disjoint_cliques(4, 8), "4xK8");
}

#[test]
fn random_models_agree_across_all_methods() {
    check_graph(&gen::gnp(150, 0.08, 1), "gnp150");
    check_graph(&gen::barabasi_albert(200, 4, 2), "ba200");
    check_graph(&gen::watts_strogatz(150, 6, 0.2, 3), "ws150");
    check_graph(&gen::community_ring(400, 50, 0.25, 2, 4), "ring400");
    check_graph(&gen::random_bipartite(40, 40, 0.2, 5), "bip80");
}

#[test]
fn closed_forms_hold_end_to_end() {
    use trigon::combin::binom;
    // ϑ(K_n) = C(n, 3) — the §VII identity.
    let r = run(&gen::complete(25), Method::CpuFast, DeviceSpec::c1060());
    assert_eq!(u128::from(r.count), binom(25, 3));
    // Triangle-free families count zero on the GPU path too.
    for g in [gen::complete_bipartite(15, 15), gen::grid2d(10, 10)] {
        let r = run(&g, Method::GpuOptimized, DeviceSpec::c1060());
        assert_eq!(r.count, 0);
    }
}

#[test]
fn workload_accounting_is_consistent_across_methods() {
    let g = gen::gnp(120, 0.1, 9);
    let tests: Vec<u128> = all_methods()
        .into_iter()
        .filter(|(_, m, _)| *m != Method::Hybrid)
        .map(|(_, m, d)| run(&g, m, d).tests)
        .collect();
    assert!(
        tests.iter().all(|&t| t == tests[0]),
        "methods disagree on workload: {tests:?}"
    );
}

#[test]
fn io_to_pipeline_roundtrip() {
    // Write a generated graph as an edge list, read it back, count on the
    // simulated GPU — full-stack path.
    let g = gen::watts_strogatz(300, 8, 0.1, 7);
    let mut buf = Vec::new();
    trigon::graph::io::write_edge_list(&g, &mut buf).unwrap();
    let (g2, _) = trigon::graph::io::read_edge_list(buf.as_slice()).unwrap();
    let a = run(&g, Method::CpuFast, DeviceSpec::c1060());
    let b = run(&g2, Method::GpuOptimized, DeviceSpec::c1060());
    assert_eq!(a.count, b.count);
}

#[test]
fn kcount_extensions_cross_validate() {
    use trigon::core::kcount;
    let g = gen::gnp(30, 0.25, 3);
    // k = 3 cliques are triangles, across crates.
    assert_eq!(
        kcount::count_k_cliques(&g, 3),
        triangles::count_edge_iterator(&g)
    );
    // The simulated-GPU k-clique path agrees through the builder.
    let r = run(&g, Method::KCliques(3), DeviceSpec::c1060());
    assert_eq!(r.count, triangles::count_edge_iterator(&g));
    assert_eq!(r.kind, "cliques");
    // Independent sets complement cliques.
    let mut comp_edges = Vec::new();
    for u in 0..30u32 {
        for v in u + 1..30 {
            if !g.has_edge(u, v) {
                comp_edges.push((u, v));
            }
        }
    }
    let comp = Graph::from_edges(30, &comp_edges).unwrap();
    assert_eq!(
        kcount::count_k_independent_sets(&g, 3),
        kcount::count_k_cliques(&comp, 3)
    );
}
