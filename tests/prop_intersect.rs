//! Bit-identity properties of the adjacency-intersection backends: on
//! arbitrary simple graphs, `cpu-intersect` and `gpu-intersect` always
//! produce exactly the serial reference count — across thread widths,
//! every executor (pipeline CPU, simulated GPU, hybrid, multi-device
//! fleet), and arbitrary fault plans — mirroring `prop_workloads.rs`
//! for the [`IntersectKernel`] family.

use proptest::prelude::*;
use trigon::core::count::als_fast;
use trigon::core::hybrid::run_hybrid_workload_traced;
use trigon::core::{HybridConfig, IntersectKernel};
use trigon::gpu_sim::{DeviceSpec, FaultConfig, FaultPlan, FaultSpec};
use trigon::graph::Graph;
use trigon::{Collector, FleetSpec, Level, Method, Run, Tracer, Workload};

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

/// Runs the triangle workload through `m` and returns the count.
fn count_with(
    g: &Graph,
    m: Method,
    faults: Option<FaultConfig>,
    fleet: Option<&str>,
    threads: Option<usize>,
) -> u64 {
    let mut r = Run::new(g).method(m).telemetry(Level::Off);
    if let Some(fc) = faults {
        r = r.faults(fc);
    }
    if let Some(spec) = fleet {
        r = r.fleet(FleetSpec::parse(spec).unwrap());
    }
    if let Some(t) = threads {
        r = r.threads(t);
    }
    r.execute().unwrap().count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both intersection backends equal the serial reference on random
    /// graphs, including through a heterogeneous fleet.
    #[test]
    fn intersect_backends_match_serial(g in arb_graph(40)) {
        let expect = als_fast(&g);
        prop_assert_eq!(count_with(&g, Method::CpuIntersect, None, None, None), expect);
        prop_assert_eq!(count_with(&g, Method::GpuSimIntersect, None, None, None), expect);
        prop_assert_eq!(
            count_with(&g, Method::GpuSimIntersect, None, Some("2xC2050,1xC1060"), None),
            expect
        );
    }

    /// Thread width never changes the intersection counts.
    #[test]
    fn intersect_is_thread_width_invariant(g in arb_graph(32)) {
        let expect = als_fast(&g);
        for m in [Method::CpuIntersect, Method::GpuSimIntersect] {
            prop_assert_eq!(count_with(&g, m, None, None, Some(1)), expect, "{:?} 1t", m);
            prop_assert_eq!(count_with(&g, m, None, None, Some(4)), expect, "{:?} 4t", m);
        }
    }

    /// Random fault plans (ECC flips, transfer retries, block aborts)
    /// leave the simulated intersection kernel bit-identical: recovery
    /// recomputes lost chunks through the same IntersectKernel.
    #[test]
    fn fault_plans_leave_intersect_bit_identical(
        g in arb_graph(28),
        ecc in 0u32..3,
        xfer in 0u32..3,
        abort in 0u32..3,
        seed in 0u64..500,
    ) {
        let expect = als_fast(&g);
        let spec = FaultSpec { ecc, xfer, abort, stall: 0 };
        let fc = FaultConfig::new(FaultPlan::new(spec, seed));
        prop_assert_eq!(count_with(&g, Method::GpuSimIntersect, Some(fc), None, None), expect);
    }

    /// The hybrid shared/global executor is generic over the kernel;
    /// IntersectKernel rides it to the same bits.
    #[test]
    fn hybrid_executor_carries_intersect_kernel(g in arb_graph(32)) {
        let cfg = HybridConfig::new(DeviceSpec::c1060());
        let (r, partial) = run_hybrid_workload_traced(
            &g, &cfg, &IntersectKernel, &mut Collector::disabled(), &Tracer::disabled(),
        );
        prop_assert_eq!(r.triangles, als_fast(&g));
        prop_assert_eq!(partial, als_fast(&g));
    }
}

/// The intersection methods are triangles-only: other workloads are
/// rejected up front, as are CPU-side fault/fleet configurations.
#[test]
fn intersect_validation_matrix() {
    let g = trigon::graph::gen::gnp(60, 0.1, 1);
    for m in [Method::CpuIntersect, Method::GpuSimIntersect] {
        for w in [
            Workload::Clustering,
            Workload::KTruss(4),
            Workload::Enumerate,
        ] {
            assert!(
                Run::new(&g).workload(w).method(m).execute().is_err(),
                "{m:?} must reject {w:?}"
            );
        }
    }
    let fc = FaultConfig::new(FaultPlan::new(
        FaultSpec {
            ecc: 1,
            xfer: 0,
            abort: 0,
            stall: 0,
        },
        7,
    ));
    assert!(
        Run::new(&g)
            .method(Method::CpuIntersect)
            .faults(fc)
            .execute()
            .is_err(),
        "cpu-intersect is a host method; fault injection must be rejected"
    );
    assert!(
        Run::new(&g)
            .method(Method::CpuIntersect)
            .fleet(FleetSpec::parse("2xC1060").unwrap())
            .execute()
            .is_err(),
        "cpu-intersect cannot shard over a device fleet"
    );
}

/// `RunReport.profile` carries per-ALS counter data for the simulated
/// intersection method — the acceptance hook for the roofline story.
#[test]
fn gpu_intersect_attaches_profile_counters() {
    let g = trigon::graph::gen::gnp(300, 0.05, 3);
    let r = Run::new(&g)
        .method(Method::GpuSimIntersect)
        .telemetry(Level::Off)
        .execute()
        .unwrap();
    let profile = r.profile.as_ref().expect("profile section present");
    let json = profile.to_json();
    let counters = json.get("counters").expect("counter totals");
    let tx = match counters.get("transactions") {
        Some(trigon::Json::UInt(v)) => *v,
        other => panic!("transactions missing: {other:?}"),
    };
    assert!(tx > 0, "the intersect kernel must price transactions");
    let instr = match counters.get("instructions") {
        Some(trigon::Json::UInt(v)) => *v,
        other => panic!("instructions missing: {other:?}"),
    };
    assert!(instr > 0);
    assert_eq!(r.count, als_fast(&g));
}
