//! Property-based cluster invariants: for *every* generated graph and
//! node roster (1–8 nodes, mixed per-node fleets) the node-partitioned
//! count is bit-identical to the serial CPU count under both partition
//! layouts, across CPU thread widths, with injected node loss and
//! device loss; and a one-node cluster is a true no-op — its execution
//! trace and its report (minus the `cluster` section) are byte-identical
//! to a plain fleet run on that node's roster.

use proptest::prelude::*;
use std::sync::Arc;
use trigon::graph::{triangles, Graph};
use trigon::{
    Analysis, ClusterSpec, FleetSpec, Level, LossPlan, ManualClock, Method, PartitionStrategy,
    Tracer,
};

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

/// Arbitrary cluster rosters: 1–8 nodes, each a 1–3 device fleet drawn
/// per-slot from the Table I registry, so heterogeneous nodes (and
/// heterogeneous fleets inside nodes) come up constantly.
fn arb_cluster() -> impl Strategy<Value = ClusterSpec> {
    proptest::collection::vec(proptest::collection::vec(0usize..3, 1..=3), 1..=8).prop_map(
        |nodes| {
            let table = ["C1060", "C2050", "C2070"];
            let spec = nodes
                .iter()
                .map(|picks| {
                    let fleet = picks
                        .iter()
                        .map(|&i| table[i])
                        .collect::<Vec<_>>()
                        .join(",");
                    format!("({fleet})")
                })
                .collect::<Vec<_>>()
                .join(",");
            ClusterSpec::parse(&spec).expect("roster from the registry parses")
        },
    )
}

fn cluster_count(
    g: &Graph,
    cluster: &ClusterSpec,
    strategy: PartitionStrategy,
    node_loss: Option<LossPlan>,
    device_loss: Option<LossPlan>,
    threads: Option<usize>,
) -> u64 {
    let mut a = Analysis::new(g)
        .method(Method::GpuOptimized)
        .cluster(cluster.clone())
        .partition(strategy)
        .telemetry(Level::Off);
    if let Some(l) = node_loss {
        a = a.node_loss(l);
    }
    if let Some(l) = device_loss {
        a = a.device_loss(l);
    }
    if let Some(t) = threads {
        a = a.threads(t);
    }
    a.run().unwrap().count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central cluster invariant: whatever the roster and layout,
    /// the node-partitioned count equals brute force — every triangle
    /// lives in exactly one ALS, so a partition of the ALS list across
    /// nodes is a partition of the triangles.
    #[test]
    fn cluster_counts_match_serial(g in arb_graph(40), cluster in arb_cluster()) {
        let brute = triangles::count_brute_force(&g);
        for strategy in [PartitionStrategy::Auto, PartitionStrategy::OneD, PartitionStrategy::TwoD] {
            prop_assert_eq!(
                cluster_count(&g, &cluster, strategy, None, None, None),
                brute,
                "{} under {:?}", cluster, strategy
            );
        }
    }

    /// The count is independent of the CPU thread width driving the
    /// simulation — partials fold in canonical node order.
    #[test]
    fn cluster_counts_are_thread_width_independent(
        g in arb_graph(30),
        cluster in arb_cluster(),
        threads in 1usize..5,
    ) {
        let serial = cluster_count(&g, &cluster, PartitionStrategy::Auto, None, None, Some(1));
        let wide = cluster_count(&g, &cluster, PartitionStrategy::Auto, None, None, Some(threads));
        prop_assert_eq!(serial, wide);
    }

    /// Node loss migrates orphaned ALS onto surviving nodes without
    /// perturbing the count, for any loss size (the plan clamps to
    /// leave a survivor); device loss inside every node's fleet rides
    /// along.
    #[test]
    fn node_and_device_loss_keep_counts(
        g in arb_graph(40),
        cluster in arb_cluster(),
        lost_nodes in 1u32..8,
        lost_devices in 0u32..3,
        seed in 0u64..1_000,
    ) {
        let brute = triangles::count_brute_force(&g);
        let node_loss = Some(LossPlan::new(lost_nodes, seed));
        let device_loss = (lost_devices > 0).then(|| LossPlan::new(lost_devices, seed ^ 0x5EED));
        prop_assert_eq!(
            cluster_count(&g, &cluster, PartitionStrategy::Auto, node_loss, device_loss, None),
            brute
        );
    }

    /// Determinism: the same roster, layout, and loss seed reproduce
    /// the same cluster section — per-node partials included — twice
    /// over.
    #[test]
    fn same_seed_reproduces_cluster_section(
        cluster in arb_cluster(),
        lost in 0u32..3,
        seed in 0u64..1_000,
    ) {
        let g = trigon::graph::gen::gnp(120, 0.08, 9);
        let run = || {
            let mut a = Analysis::new(&g)
                .method(Method::GpuOptimized)
                .cluster(cluster.clone())
                .telemetry(Level::Off);
            if lost > 0 {
                a = a.node_loss(LossPlan::new(lost, seed));
            }
            let r = a.run().unwrap();
            (r.count, format!("{:?}", r.cluster.expect("cluster section")))
        };
        prop_assert_eq!(run(), run());
    }
}

/// A one-node cluster is a true no-op: the Chrome trace of
/// `--cluster "1x(2xC2050)"` is byte-identical to a plain
/// `--devices 2xC2050` fleet run (spans, attrs, cycle accounting,
/// ordering — everything), and the report JSON matches once the
/// `cluster` section is cleared.
#[test]
fn one_node_cluster_is_byte_identical_to_plain_fleet() {
    let g = trigon::graph::gen::gnp(300, 0.05, 3);
    let run = |cluster: Option<ClusterSpec>| {
        let tracer = Tracer::with_clock(Level::Trace, Arc::new(ManualClock::new()));
        let mut a = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .telemetry(Level::Trace)
            .tracer(tracer);
        a = match cluster {
            Some(c) => a.cluster(c),
            None => a.fleet(FleetSpec::parse("2xC2050").unwrap()),
        };
        a.run().unwrap()
    };
    let mut plain = run(None);
    let mut clustered = run(Some(ClusterSpec::parse("1x(2xC2050)").unwrap()));
    assert!(plain.cluster.is_none());
    assert!(
        clustered.cluster.is_some(),
        "cluster run must carry the section"
    );
    assert_eq!(
        plain.tracer.to_chrome_trace().to_string_pretty(),
        clustered.tracer.to_chrome_trace().to_string_pretty(),
        "a one-node cluster must not perturb the execution trace"
    );
    // The same execution reports through `fleet` on the plain run and
    // through `cluster` on the cluster run; minus those two sections the
    // reports must agree bit for bit.
    plain.fleet = None;
    clustered.cluster = None;
    clustered.device = plain.device.clone();
    assert_eq!(
        plain.to_json().to_string_pretty(),
        clustered.to_json().to_string_pretty(),
        "minus the fleet/cluster sections, the reports must be byte-identical"
    );
}

/// Non-GPU methods reject a cluster; node loss without a cluster, a
/// cluster plus a fleet, and chunk faults on multi-device nodes are all
/// configuration errors (exit code 2) — not silent no-ops.
#[test]
fn cluster_misconfigurations_are_rejected() {
    let g = trigon::graph::gen::gnp(50, 0.1, 1);
    let cluster = ClusterSpec::parse("2x(C2050)").unwrap();
    for method in [Method::CpuFast, Method::Hybrid, Method::KCliques(3)] {
        let err = Analysis::new(&g)
            .method(method)
            .cluster(cluster.clone())
            .run()
            .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{method:?} must reject a cluster");
    }
    let err = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .node_loss(LossPlan::new(1, 0))
        .run()
        .unwrap_err();
    assert_eq!(
        err.exit_code(),
        2,
        "loss without a cluster must be rejected"
    );
    let err = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .cluster(cluster.clone())
        .fleet(FleetSpec::parse("2xC2050").unwrap())
        .run()
        .unwrap_err();
    assert_eq!(err.exit_code(), 2, "cluster + fleet must be rejected");
}
