//! Cross-workload agreement properties for the [`ChunkKernel`] API: on
//! arbitrary simple graphs every workload is bit-identical across the
//! serial, parallel, simulated-GPU, hybrid, and fleet executors — with
//! and without fault plans — and each workload agrees with an
//! independent reference computation (clustering derived from the
//! enumeration listing, k-truss against a brute-force peeler).

use proptest::prelude::*;
use std::collections::HashSet;
use trigon::core::gpu_exec::{self, GpuConfig};
use trigon::core::workload::{
    clustering_coefficients_from_counts, mean_clustering, ChunkKernel, EnumerateKernel,
};
use trigon::gpu_sim::{DeviceSpec, FaultConfig, FaultPlan, FaultSpec};
use trigon::graph::{gen, triangles, Graph};
use trigon::{Collector, FleetSpec, Level, Method, Run, Tracer, Workload, WorkloadSection};

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

/// Runs `w` through `m` and returns the comparable outcome: the headline
/// count plus the whole workload section (PartialEq, f64 fields included
/// — agreement must be bitwise, not approximate).
fn outcome(
    g: &Graph,
    w: Workload,
    m: Method,
    faults: Option<FaultConfig>,
    fleet: Option<&str>,
) -> (u64, WorkloadSection) {
    let mut r = Run::new(g).workload(w).method(m).telemetry(Level::Off);
    if let Some(fc) = faults {
        r = r.faults(fc);
    }
    if let Some(spec) = fleet {
        r = r.fleet(FleetSpec::parse(spec).unwrap());
    }
    let rep = r.execute().unwrap();
    (rep.count, rep.workload)
}

/// Brute-force k-truss: recompute every alive edge's support from
/// scratch each round and peel all under-supported edges at once, until
/// a fixed point. Independent of the kernel's per-ALS support counting
/// and of the queue-based peeler.
fn brute_truss_edges(g: &Graph, k: u32) -> u64 {
    let mut alive: HashSet<(u32, u32)> = HashSet::new();
    for u in 0..g.n() {
        for &v in g.neighbors(u) {
            if u < v {
                alive.insert((u, v));
            }
        }
    }
    let thresh = k.saturating_sub(2) as usize;
    loop {
        let doomed: Vec<(u32, u32)> = alive
            .iter()
            .copied()
            .filter(|&(u, v)| {
                let support = (0..g.n())
                    .filter(|&w| {
                        w != u
                            && w != v
                            && alive.contains(&(u.min(w), u.max(w)))
                            && alive.contains(&(v.min(w), v.max(w)))
                    })
                    .count();
                support < thresh
            })
            .collect();
        if doomed.is_empty() {
            return alive.len() as u64;
        }
        for e in doomed {
            alive.remove(&e);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clustering coefficients derived from the enumeration workload's
    /// triangle listing are bit-identical to the direct clustering
    /// kernel's (same per-vertex integer counts, same divisions).
    #[test]
    fn clustering_from_enumeration_matches_direct_kernel(g in arb_graph(40)) {
        let cfg = GpuConfig::optimized(DeviceSpec::c1060());
        let kern = EnumerateKernel;
        let (_, mut triples) = gpu_exec::run_workload_traced(
            &g, &cfg, &kern, &mut Collector::disabled(), &Tracer::disabled(),
        ).unwrap();
        kern.finalize(&mut triples);
        let mut per_vertex = vec![0u64; g.n() as usize];
        for t in &triples {
            for &v in t {
                per_vertex[v as usize] += 1;
            }
        }
        let from_enum = clustering_coefficients_from_counts(&g, &per_vertex);
        let (count, section) = outcome(&g, Workload::Clustering, Method::GpuOptimized, None, None);
        prop_assert_eq!(count, triples.len() as u64);
        match section {
            WorkloadSection::Clustering { vertices, mean_clustering: mean, transitivity } => {
                prop_assert_eq!(vertices, g.n() as usize);
                prop_assert_eq!(mean, mean_clustering(&from_enum));
                // And both agree with the reference implementation.
                let reference = triangles::clustering_coefficients(&g);
                for (a, b) in from_enum.iter().zip(reference.iter()) {
                    prop_assert!((a - b).abs() < 1e-9);
                }
                prop_assert!((transitivity - triangles::transitivity(&g)).abs() < 1e-9);
            }
            other => prop_assert!(false, "wrong section {other:?}"),
        }
    }

    /// The support-peeling k-truss agrees with a from-scratch brute
    /// force on arbitrary graphs, across k.
    #[test]
    fn ktruss_matches_brute_force(g in arb_graph(24), k in 3u32..7) {
        let brute = brute_truss_edges(&g, k);
        let (count, section) = outcome(&g, Workload::KTruss(k), Method::CpuFast, None, None);
        prop_assert_eq!(count, brute);
        match section {
            WorkloadSection::KTruss { edges_kept, edges_peeled, edges_initial, .. } => {
                prop_assert_eq!(edges_kept, brute);
                prop_assert_eq!(edges_kept + edges_peeled, edges_initial);
                prop_assert_eq!(edges_initial, g.m() as u64);
            }
            other => prop_assert!(false, "wrong section {other:?}"),
        }
    }

    /// Every workload is bit-identical across every executor: CPU serial,
    /// both simulated-GPU layouts, the sampled fidelity mode, the hybrid
    /// split, and a heterogeneous 3-device fleet.
    #[test]
    fn workloads_agree_across_executors(g in arb_graph(28)) {
        for w in [
            Workload::Triangles,
            Workload::Clustering,
            Workload::KTruss(4),
            Workload::Enumerate,
        ] {
            let base = outcome(&g, w, Method::CpuFast, None, None);
            for m in [Method::CpuExhaustive, Method::GpuNaive, Method::GpuOptimized,
                      Method::GpuSampled, Method::Hybrid] {
                prop_assert_eq!(&outcome(&g, w, m, None, None), &base, "method {:?} on {:?}", m, w);
            }
            let fleet = outcome(&g, w, Method::GpuOptimized, None, Some("2xC2050,1xC1060"));
            prop_assert_eq!(&fleet, &base, "fleet on {:?}", w);
        }
    }

    /// Chunk-level fault plans never change any workload's result: the
    /// recovery path re-executes through the same kernel.
    #[test]
    fn fault_plans_leave_workloads_bit_identical(
        g in arb_graph(24),
        ecc in 0u32..3,
        xfer in 0u32..3,
        abort in 0u32..3,
        seed in 0u64..500,
    ) {
        let spec = FaultSpec { ecc, xfer, abort, stall: 0 };
        for w in [
            Workload::Triangles,
            Workload::Clustering,
            Workload::KTruss(4),
            Workload::Enumerate,
        ] {
            let clean = outcome(&g, w, Method::GpuOptimized, None, None);
            let fc = FaultConfig::new(FaultPlan::new(spec, seed));
            let faulted = outcome(&g, w, Method::GpuOptimized, Some(fc), None);
            prop_assert_eq!(&faulted, &clean, "faulted {:?} drifted", w);
        }
    }
}

/// `kcount` at k = 3 is the triangle count, end to end through the
/// widened-executor path and the report.
#[test]
fn kcount_k3_equals_triangles() {
    let g = gen::gnp(300, 0.05, 7);
    let (tri, _) = outcome(&g, Workload::Triangles, Method::GpuOptimized, None, None);
    let (k3, section) = outcome(&g, Workload::KCliques(3), Method::GpuOptimized, None, None);
    assert_eq!(k3, tri);
    assert_eq!(section, WorkloadSection::KCount { k: 3 });
}

/// The builder's thread pinning gives the same bits at every width.
#[test]
fn thread_width_never_changes_workload_results() {
    let g = gen::gnp(400, 0.04, 11);
    for w in [
        Workload::Triangles,
        Workload::Clustering,
        Workload::KTruss(5),
        Workload::Enumerate,
    ] {
        let serial = Run::new(&g)
            .workload(w)
            .method(Method::GpuOptimized)
            .telemetry(Level::Off)
            .threads(1)
            .execute()
            .unwrap();
        let wide = Run::new(&g)
            .workload(w)
            .method(Method::GpuOptimized)
            .telemetry(Level::Off)
            .threads(4)
            .execute()
            .unwrap();
        assert_eq!(serial.count, wide.count);
        assert_eq!(serial.workload, wide.workload);
    }
}
