//! Property-based fleet invariants: for *every* generated graph and
//! fleet roster (1–8 devices, mixed Table I models) the sharded
//! multi-device count is bit-identical to the serial CPU count, with
//! and without injected device loss; and a one-device fleet is a true
//! no-op — its execution trace and its report (minus the `fleet`
//! section) are byte-identical to a plain single-device run.

use proptest::prelude::*;
use std::sync::Arc;
use trigon::gpu_sim::DeviceSpec;
use trigon::graph::{triangles, Graph};
use trigon::{Analysis, FleetSpec, Level, LossPlan, ManualClock, Method, Tracer};

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

/// Arbitrary fleet rosters: 1–8 devices drawn per-slot from the Table I
/// registry, so heterogeneous mixes come up constantly.
fn arb_fleet() -> impl Strategy<Value = FleetSpec> {
    proptest::collection::vec(0usize..3, 1..=8).prop_map(|picks| {
        let table = DeviceSpec::table1();
        let spec = picks
            .iter()
            .map(|&i| table[i].name)
            .collect::<Vec<_>>()
            .join(",");
        FleetSpec::parse(&spec).expect("roster from the registry parses")
    })
}

fn fleet_count(g: &Graph, fleet: &FleetSpec, loss: Option<LossPlan>) -> u64 {
    let mut a = Analysis::new(g)
        .method(Method::GpuOptimized)
        .fleet(fleet.clone())
        .telemetry(Level::Off);
    if let Some(l) = loss {
        a = a.device_loss(l);
    }
    a.run().unwrap().count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central fleet invariant: whatever the roster, the sharded
    /// count equals brute force — every triangle lives in exactly one
    /// ALS, so a partition of the ALS list is a partition of the
    /// triangles.
    #[test]
    fn fleet_counts_match_serial(g in arb_graph(40), fleet in arb_fleet()) {
        let brute = triangles::count_brute_force(&g);
        prop_assert_eq!(fleet_count(&g, &fleet, None), brute);
    }

    /// Device loss reshards onto the survivors without perturbing the
    /// count, for any loss size (the plan clamps to leave a survivor).
    #[test]
    fn device_loss_keeps_counts(
        g in arb_graph(40),
        fleet in arb_fleet(),
        lost in 1u32..8,
        seed in 0u64..1_000,
    ) {
        let brute = triangles::count_brute_force(&g);
        let loss = LossPlan::new(lost, seed);
        prop_assert_eq!(fleet_count(&g, &fleet, Some(loss)), brute);
    }

    /// Determinism: the same roster and loss seed reproduce the same
    /// fleet section — per-device partials included — twice over.
    #[test]
    fn same_seed_reproduces_fleet_section(
        fleet in arb_fleet(),
        lost in 0u32..4,
        seed in 0u64..1_000,
    ) {
        let g = trigon::graph::gen::gnp(120, 0.08, 9);
        let run = || {
            let mut a = Analysis::new(&g)
                .method(Method::GpuOptimized)
                .fleet(fleet.clone())
                .telemetry(Level::Off);
            if lost > 0 {
                a = a.device_loss(LossPlan::new(lost, seed));
            }
            let r = a.run().unwrap();
            (r.count, format!("{:?}", r.fleet.expect("fleet section")))
        };
        prop_assert_eq!(run(), run());
    }
}

/// A one-device fleet is a true no-op: the Chrome trace of
/// `--devices 1xC2050` is byte-identical to a plain run on that device
/// (spans, attrs, cycle accounting, ordering — everything), and the
/// report JSON matches once the `fleet` section is cleared.
#[test]
fn one_device_fleet_is_byte_identical_to_plain_run() {
    let g = trigon::graph::gen::gnp(300, 0.05, 3);
    let run = |fleet: Option<FleetSpec>| {
        let tracer = Tracer::with_clock(Level::Trace, Arc::new(ManualClock::new()));
        let mut a = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .device(DeviceSpec::c2050())
            .telemetry(Level::Trace)
            .tracer(tracer);
        if let Some(f) = fleet {
            a = a.fleet(f);
        }
        a.run().unwrap()
    };
    let plain = run(None);
    let mut fleet = run(Some(FleetSpec::parse("1xC2050").unwrap()));
    assert!(plain.fleet.is_none());
    assert!(fleet.fleet.is_some(), "fleet run must carry the section");
    assert_eq!(
        plain.tracer.to_chrome_trace().to_string_pretty(),
        fleet.tracer.to_chrome_trace().to_string_pretty(),
        "a one-device fleet must not perturb the execution trace"
    );
    fleet.fleet = None;
    assert_eq!(
        plain.to_json().to_string_pretty(),
        fleet.to_json().to_string_pretty(),
        "minus the fleet section, the reports must be byte-identical"
    );
}

/// An over-capacity shard surfaces as the same graph-too-large error the
/// single-device path reports (exit code 5 at the CLI).
#[test]
fn fleet_capacity_errors_are_graph_too_large() {
    let g = trigon::graph::gen::gnp(200, 0.1, 1);
    let mut tiny = DeviceSpec::c1060();
    tiny.global_mem_bytes = 64;
    let fleet = FleetSpec::homogeneous(tiny, 3).unwrap();
    let err = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .fleet(fleet)
        .telemetry(Level::Off)
        .run()
        .unwrap_err();
    assert_eq!(err.exit_code(), 5, "unexpected error: {err}");
}

/// Non-GPU methods reject a fleet, and device loss without a fleet is a
/// configuration error (exit code 2) — not a silent no-op.
#[test]
fn fleet_misconfigurations_are_rejected() {
    let g = trigon::graph::gen::gnp(50, 0.1, 1);
    let fleet = FleetSpec::parse("2xC2050").unwrap();
    for method in [Method::CpuFast, Method::Hybrid, Method::KCliques(3)] {
        let err = Analysis::new(&g)
            .method(method)
            .fleet(fleet.clone())
            .run()
            .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{method:?} must reject a fleet");
    }
    let err = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .device_loss(LossPlan::new(1, 0))
        .run()
        .unwrap_err();
    assert_eq!(err.exit_code(), 2, "loss without a fleet must be rejected");
}
