//! The qualitative claims of §XI, pinned as tests at reduced scale so the
//! suite stays fast: who wins, roughly by how much, and where the
//! crossover falls. The full-size runs live in the `repro` binary.

use trigon::gpu_sim::DeviceSpec;
use trigon::graph::gen;
use trigon::{Analysis, Level, Method};

fn modeled_s(g: &trigon::graph::Graph, method: Method, device: DeviceSpec) -> f64 {
    // Telemetry off: these tests only compare modeled times, and skipping
    // collection also skips the Eq. 6 prediction pass.
    Analysis::new(g)
        .method(method)
        .device(device)
        .telemetry(Level::Off)
        .run()
        .unwrap()
        .modeled_s
}

fn cpu_s(g: &trigon::graph::Graph) -> f64 {
    modeled_s(g, Method::CpuFast, DeviceSpec::c1060())
}

fn gpu_s(g: &trigon::graph::Graph, optimized: bool) -> f64 {
    let m = if optimized {
        Method::GpuOptimized
    } else {
        Method::GpuNaive
    };
    modeled_s(g, m, DeviceSpec::c1060())
}

#[test]
fn fig10_crossover_cpu_wins_small_gpu_wins_large() {
    let small = gen::gnp(200, 16.0 / 200.0, 42);
    assert!(
        cpu_s(&small) < gpu_s(&small, true),
        "paper: timings 'almost similar' at small n, CPU ahead of overheads"
    );
    let large = gen::gnp(900, 16.0 / 900.0, 42);
    let speedup = cpu_s(&large) / gpu_s(&large, true);
    assert!(
        speedup > 3.0,
        "paper: clear GPU win at ~1000 nodes, got {speedup:.2}x"
    );
}

#[test]
fn fig10_speedup_grows_with_n() {
    let sizes = [300u32, 600, 900];
    let speedups: Vec<f64> = sizes
        .iter()
        .map(|&n| {
            let g = gen::gnp(n, 16.0 / f64::from(n), 42);
            cpu_s(&g) / gpu_s(&g, true)
        })
        .collect();
    assert!(
        speedups.windows(2).all(|w| w[1] > w[0]),
        "speedup must grow with n: {speedups:?}"
    );
}

#[test]
fn fig11_speedup_exceeds_fig10_band() {
    // Above the CPU cache cliff (n² bits > 8 MB ⇔ n > 8192) the paper's
    // speedup reaches ~10x. Sampled fidelity keeps this fast.
    let g = gen::community_ring(10_000, 250, 0.3, 4, 42);
    let run = |m| {
        Analysis::new(&g)
            .method(m)
            .telemetry(Level::Off)
            .run()
            .unwrap()
    };
    let cpu = run(Method::CpuFast);
    let gpu = run(Method::GpuSampled);
    let speedup = cpu.modeled_s / gpu.modeled_s;
    assert!(
        (7.0..14.0).contains(&speedup),
        "paper band ~10x, got {speedup:.2}x"
    );
    assert_eq!(cpu.count, gpu.count);
}

#[test]
fn fig12_primitives_gain_in_band() {
    let g = gen::gnp(800, 16.0 / 800.0, 42);
    let naive = gpu_s(&g, false);
    let opt = gpu_s(&g, true);
    let gain = (naive - opt) / naive;
    assert!(
        (0.02..0.15).contains(&gain),
        "paper: 6-8 % primitive gain, got {:.1} %",
        100.0 * gain
    );
}

#[test]
fn fermi_cache_shrinks_the_primitive_gap() {
    // §X: compute capability 2.x hides partition camping behind the L2 —
    // the naive/optimized gap must be smaller on the C2050 than the C1060.
    let g = gen::gnp(600, 16.0 / 600.0, 42);
    let gap = |dev: DeviceSpec| {
        let nv = modeled_s(&g, Method::GpuNaive, dev.clone());
        let op = modeled_s(&g, Method::GpuOptimized, dev);
        (nv - op) / nv
    };
    let tesla = gap(DeviceSpec::c1060());
    let fermi = gap(DeviceSpec::c2050());
    assert!(
        fermi < tesla,
        "Fermi gap {fermi:.3} should be below Tesla gap {tesla:.3}"
    );
}
