//! Property-based fault-injection invariants: under *every* generated
//! [`FaultPlan`] the recovered simulated-GPU count is bit-identical to the
//! serial CPU count, fault/recovery event sequences are a pure function of
//! the seed, and the zero-fault plan leaves the execution trace
//! byte-identical to an unfaulted run.

use proptest::prelude::*;
use std::sync::Arc;
use trigon::core::gpu_exec::{self, GpuConfig};
use trigon::core::workload::CountKernel;
use trigon::gpu_sim::{DeviceSpec, FaultConfig, FaultPlan, FaultSpec};
use trigon::graph::{triangles, Graph};
use trigon::{Analysis, Collector, Level, ManualClock, Method, Tracer};

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

/// Arbitrary fault plans, including empty ones and plans asking for more
/// faults than the run has sites to absorb.
fn arb_spec() -> impl Strategy<Value = FaultSpec> {
    (0u32..4, 0u32..4, 0u32..4, 0u32..3).prop_map(|(ecc, xfer, abort, stall)| FaultSpec {
        ecc,
        xfer,
        abort,
        stall,
    })
}

fn faulted_count(g: &Graph, method: Method, fc: FaultConfig) -> u64 {
    Analysis::new(g)
        .method(method)
        .telemetry(Level::Off)
        .faults(fc)
        .run()
        .unwrap()
        .count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central recovery invariant: whatever the plan injects, the
    /// recovered count equals brute force on both simulated kernels.
    #[test]
    fn recovered_counts_match_serial(
        g in arb_graph(40),
        spec in arb_spec(),
        seed in 0u64..1_000,
    ) {
        let brute = triangles::count_brute_force(&g);
        let fc = FaultConfig::new(FaultPlan::new(spec, seed));
        prop_assert_eq!(faulted_count(&g, Method::GpuOptimized, fc), brute);
        prop_assert_eq!(faulted_count(&g, Method::GpuNaive, fc), brute);
    }

    /// Hybrid runs recover from transfer faults without changing counts.
    #[test]
    fn hybrid_recovers_from_xfer_faults(
        g in arb_graph(30),
        xfer in 1u32..6,
        seed in 0u64..1_000,
    ) {
        let brute = triangles::count_brute_force(&g);
        let spec = FaultSpec { xfer, ..FaultSpec::default() };
        let fc = FaultConfig::new(FaultPlan::new(spec, seed));
        prop_assert_eq!(faulted_count(&g, Method::Hybrid, fc), brute);
    }

    /// Determinism: the same spec and seed reproduce the exact fault and
    /// recovery event sequence, the same tracer instants, and the same
    /// count — twice over.
    #[test]
    fn same_seed_reproduces_event_sequence(
        spec in arb_spec(),
        seed in 0u64..1_000,
    ) {
        let g = trigon::graph::gen::gnp(120, 0.08, 9);
        let fc = FaultConfig::new(FaultPlan::new(spec, seed));
        let cfg = GpuConfig::optimized(DeviceSpec::c1060()).faults(fc);
        let run = || {
            let tracer = Tracer::with_clock(Level::Trace, Arc::new(ManualClock::new()));
            let (r, _) = gpu_exec::run_workload_traced(
                &g, &cfg, &CountKernel, &mut Collector::disabled(), &tracer,
            )
            .unwrap();
            (r.triangles, r.faults.expect("fault outcome"), tracer.instants())
        };
        let (c1, o1, i1) = run();
        let (c2, o2, i2) = run();
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(o1, o2);
        prop_assert_eq!(i1, i2);
    }
}

/// The zero-fault plan is a true no-op: the Chrome trace of a run with an
/// empty `FaultSpec` is byte-identical to a run with no fault config at
/// all (spans, attrs, cycle accounting, ordering — everything).
#[test]
fn zero_fault_plan_trace_is_byte_identical() {
    let g = trigon::graph::gen::gnp(300, 0.05, 3);
    let trace_of = |faults: Option<FaultConfig>| {
        let tracer = Tracer::with_clock(Level::Trace, Arc::new(ManualClock::new()));
        let mut a = Analysis::new(&g)
            .method(Method::GpuOptimized)
            .device(DeviceSpec::c1060())
            .telemetry(Level::Trace)
            .tracer(tracer);
        if let Some(fc) = faults {
            a = a.faults(fc);
        }
        let r = a.run().unwrap();
        r.tracer.to_chrome_trace().to_string_pretty()
    };
    let baseline = trace_of(None);
    let zero = trace_of(Some(FaultConfig::new(FaultPlan::new(
        FaultSpec::default(),
        123,
    ))));
    assert_eq!(
        baseline, zero,
        "an empty fault plan must not perturb the execution trace"
    );
}

/// Negative control: with recovery disabled an ECC corruption *must*
/// change the count — otherwise the injection isn't corrupting anything
/// and the recovery property tests above prove nothing.
#[test]
fn recovery_off_ecc_corruption_drifts_count() {
    let g = trigon::graph::gen::gnp(300, 0.05, 3);
    let brute = triangles::count_brute_force(&g);
    let spec = FaultSpec {
        ecc: 1,
        ..FaultSpec::default()
    };
    let mut fc = FaultConfig::new(FaultPlan::new(spec, 11));
    fc.recovery = false;
    let corrupted = faulted_count(&g, Method::GpuOptimized, fc);
    assert_ne!(
        corrupted, brute,
        "with recovery off, an injected ECC corruption must be visible"
    );
}

/// Recovery keeps the count right even when the plan asks for far more
/// faults than the run has chunks or SMs — every site saturates and the
/// executor still converges.
#[test]
fn saturating_plan_still_recovers() {
    let g = trigon::graph::gen::gnp(150, 0.08, 5);
    let brute = triangles::count_brute_force(&g);
    let spec = FaultSpec {
        ecc: 500,
        xfer: 3,
        abort: 500,
        stall: 1_000,
    };
    let fc = FaultConfig::new(FaultPlan::new(spec, 2));
    assert_eq!(faulted_count(&g, Method::GpuOptimized, fc), brute);
}

/// Exhausting every transfer retry degrades gracefully to the CPU path —
/// the count survives and the report says the fallback happened.
#[test]
fn transfer_exhaustion_falls_back_to_cpu() {
    let g = trigon::graph::gen::gnp(200, 0.05, 7);
    let brute = triangles::count_brute_force(&g);
    let spec = FaultSpec {
        xfer: 64,
        ..FaultSpec::default()
    };
    let fc = FaultConfig::new(FaultPlan::new(spec, 4));
    let r = Analysis::new(&g)
        .method(Method::GpuOptimized)
        .telemetry(Level::Off)
        .faults(fc)
        .run()
        .unwrap();
    assert_eq!(r.count, brute);
    let f = r.faults.expect("faults section");
    assert!(
        f.run_cpu_fallback,
        "64 transfer faults must exhaust retries"
    );
}
