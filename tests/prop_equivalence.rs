//! Property-based cross-crate equivalence: on *arbitrary* simple graphs,
//! every implementation in the workspace reports the same triangle count
//! — the central correctness invariant of the reproduction.

use proptest::prelude::*;
use trigon::core::{count, kcount};
use trigon::graph::{triangles, Graph};
use trigon::{Analysis, Level, Method};

fn count_with(g: &Graph, method: Method) -> u64 {
    Analysis::new(g)
        .method(method)
        .telemetry(Level::Off)
        .run()
        .unwrap()
        .count
}

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (3..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Five independent counting paths agree with brute force.
    #[test]
    fn all_counters_agree(g in arb_graph(40)) {
        let brute = triangles::count_brute_force(&g);
        prop_assert_eq!(triangles::count_forward(&g), brute);
        prop_assert_eq!(count::cpu_exhaustive(&g).triangles, brute);
        prop_assert_eq!(count::als_fast(&g), brute);
        prop_assert_eq!(count_with(&g, Method::GpuNaive), brute);
        prop_assert_eq!(count_with(&g, Method::GpuOptimized), brute);
    }

    /// The sampled fidelity mode never changes the count.
    #[test]
    fn sampled_mode_is_count_exact(g in arb_graph(30)) {
        let brute = triangles::count_brute_force(&g);
        prop_assert_eq!(count_with(&g, Method::GpuSampled), brute);
    }

    /// k = 3 cliques equal triangles on arbitrary graphs.
    #[test]
    fn k3_cliques_equal_triangles(g in arb_graph(25)) {
        prop_assert_eq!(
            kcount::count_k_cliques(&g, 3),
            triangles::count_brute_force(&g)
        );
    }

    /// Triangles + triangle-free test are consistent.
    #[test]
    fn triangle_free_consistent(g in arb_graph(30)) {
        prop_assert_eq!(
            triangles::is_triangle_free(&g),
            triangles::count_brute_force(&g) == 0
        );
    }
}
