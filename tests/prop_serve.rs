//! Serving-tier equivalence properties: on arbitrary simple graphs,
//! for every workload × executor the daemon serves, a warm-cache replay
//! is bit-identical to the cold-path run, both match a one-shot
//! `Run`-builder execution of the same coordinate, and evicting the
//! graph then reloading it reconverges to the same report.
//!
//! Reports are compared with the wall-clock-bearing sections stripped
//! (`timing`, `telemetry`) and the per-request `serving` section
//! removed — everything else, including every count, every modeled
//! second, and the whole simulated-GPU section, must agree bitwise.

use proptest::prelude::*;
use trigon::gpu_sim::DeviceSpec;
use trigon::graph::Graph;
use trigon::serve::{Server, ServerConfig};
use trigon::{Json, Level, Method, Run, Workload};

fn arb_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (4..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(4 * n as usize)).prop_map(move |raw| {
            let edges: Vec<(u32, u32)> = raw.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).expect("filtered edges valid")
        })
    })
}

/// (workload, k) coordinates the daemon serves through the kernel API.
fn arb_workload() -> impl Strategy<Value = (&'static str, Option<u64>)> {
    prop_oneof![
        Just(("triangles", None)),
        Just(("clustering", None)),
        Just(("ktruss", Some(3u64))),
        Just(("enumerate", None)),
    ]
}

/// Executors the cache must be transparent for: both CPU counting
/// models and the artifact-reusing simulated-GPU layouts. The
/// intersection backends count triangles only, so pairing them with
/// another workload is rejected at admission — constrain the strategy
/// to coordinates the daemon actually serves.
fn arb_coordinate() -> impl Strategy<Value = ((&'static str, Option<u64>), &'static str)> {
    let method = prop_oneof![
        Just("cpu-fast"),
        Just("cpu-intersect"),
        Just("gpu-naive"),
        Just("gpu-opt"),
        Just("gpu-intersect"),
    ];
    (arb_workload(), method).prop_map(|(wk, m)| {
        if m.ends_with("intersect") {
            (("triangles", None), m)
        } else {
            (wk, m)
        }
    })
}

/// Nulls the sections that carry host wall-clock (different run to
/// run) and the per-request serving annotation, leaving every modeled
/// quantity and count in place for the bitwise comparison.
fn strip(report: &Json) -> Json {
    let mut r = report.clone();
    r.set("serving", Json::Null);
    r.set("timing", Json::Null);
    r.set("telemetry", Json::Null);
    r
}

/// Issues one single-item query and returns its report JSON.
fn query(server: &Server, graph: &str, workload: &str, k: Option<u64>, method: &str) -> Json {
    let k_field = k.map_or(String::new(), |k| format!(r#","k":{k}"#));
    let (resp, _) = server.handle(
        &Json::parse(&format!(
            r#"{{"op":"query","graph":"{graph}","workload":"{workload}"{k_field},"method":"{method}"}}"#
        ))
        .expect("request parses"),
    );
    assert_eq!(
        resp.get("ok"),
        Some(&Json::Bool(true)),
        "query failed: {resp:?}"
    );
    match resp.get("reports") {
        Some(Json::Array(reports)) if reports.len() == 1 => reports[0].clone(),
        other => panic!("expected one report, got {other:?}"),
    }
}

fn cache_disposition(report: &Json) -> &str {
    match report.get("serving").and_then(|s| s.get("cache")) {
        Some(Json::Str(s)) => s,
        other => panic!("report without serving.cache: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cold path, warm replay, a one-shot `Run`, and the post-eviction
    /// reconvergence all agree bitwise for every served coordinate.
    #[test]
    fn warm_replay_is_bit_identical_to_cold_and_one_shot(
        g in arb_graph(40),
        ((workload, k), method) in arb_coordinate(),
    ) {
        let server = Server::new(ServerConfig::default());
        server
            .registry()
            .load("g", g.clone(), "prop".to_string())
            .expect("load");

        let cold = query(&server, "g", workload, k, method);
        prop_assert_eq!(cache_disposition(&cold), "miss");
        let warm = query(&server, "g", workload, k, method);
        prop_assert_eq!(cache_disposition(&warm), "hit");
        prop_assert_eq!(strip(&cold), strip(&warm), "warm replay diverged from cold");

        // The daemon must be a transparent wrapper: the same coordinate
        // through the one-shot builder yields the same report.
        let one_shot = Run::new(&g)
            .method(Method::parse(method).expect("method"))
            .workload(Workload::parse(workload, k.map(|k| k as u32)).expect("workload"))
            .device(DeviceSpec::c1060())
            .telemetry(Level::Standard)
            .execute()
            .expect("one-shot run")
            .to_json();
        prop_assert_eq!(
            strip(&cold),
            strip(&one_shot),
            "served report diverged from the one-shot pipeline"
        );

        // Evict + reload: caches are gone (cold again), result converges.
        let (resp, _) = server
            .handle(&Json::parse(r#"{"op":"evict","name":"g"}"#).expect("evict parses"));
        prop_assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        server
            .registry()
            .load("g", g.clone(), "prop".to_string())
            .expect("reload");
        let again = query(&server, "g", workload, k, method);
        prop_assert_eq!(cache_disposition(&again), "miss");
        prop_assert_eq!(
            strip(&cold),
            strip(&again),
            "post-eviction rerun diverged"
        );
    }
}
